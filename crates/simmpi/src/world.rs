//! The shared state of a simulated MPI job: rank mailboxes, the network, and
//! message-matching/rendezvous machinery.
//!
//! Lock discipline: the world mutex is only ever held between two yields of
//! the same process (never across `advance`/`park`), and because the DES
//! engine runs exactly one process at a time the mailbox protocol is
//! race-free — e.g. a receiver that publishes a pending-receive and then
//! parks cannot be observed "pending but not yet parked" by any sender.
//!
//! Under a sharded run (`JobSpec::with_shards`, see `crate::shard`) several
//! engines run concurrently against this one world, and the mutex does real
//! arbitration — but every *cross-shard* interaction (a mailbox push, a
//! pending-receive wake, a reservation on a link another shard's traffic
//! uses) is deferred into per-shard outboxes and replayed sequentially, in a
//! canonical order, at the window barrier. In-window concurrent lock
//! sections from different shards only ever touch disjoint state (their own
//! rank's entry, their own partition's links — a placement precondition the
//! shard planner verifies), which is what keeps sharded runs byte-identical
//! to serial ones.

use std::collections::VecDeque;

use des::{FaultKind, FaultPlan, Pid, SimRng, SimTime};
use netsim::{EndpointModel, FlowNet, LossWindow, NetModel, Network, ProtocolModel, TopologySpec};
use parking_lot::Mutex;
use soc_arch::Platform;

use crate::error::{JobSpecError, MpiFault};
use crate::payload::Msg;

/// Per-frame overhead added to every wire transfer (Ethernet header + FCS +
/// IFG, amortised).
const FRAME_BYTES: u64 = 64;

/// Specification of a simulated MPI job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Node platform (homogeneous cluster).
    pub platform: Platform,
    /// CPU frequency of every node, GHz.
    pub freq_ghz: f64,
    /// Protocol stack (TCP/IP or Open-MX).
    pub proto: ProtocolModel,
    /// Interconnect topology.
    pub topology: TopologySpec,
    /// Number of MPI ranks.
    pub ranks: u32,
    /// Ranks placed on each node (1 = one rank per node using all cores).
    pub ranks_per_node: u32,
    /// Scheduled faults injected into this run ([`FaultPlan::none`] = clean).
    pub fault_plan: FaultPlan,
    /// Retransmission and timeout policy for lossy/dead links.
    pub retry: RetryPolicy,
    /// Optional logical→physical node mapping. Lets a checkpoint/restart
    /// driver re-run a job on surviving nodes plus spares without changing
    /// rank numbering. `None` = identity.
    pub node_map: Option<Vec<u32>>,
    /// Watchdog budget on dispatched engine events for this job. `None`
    /// falls back to the process-global default
    /// ([`set_default_event_budget`](crate::set_default_event_budget));
    /// exhaustion surfaces as
    /// [`MpiFault::Engine`]`(`[`SimError::EventBudgetExhausted`]`)`.
    ///
    /// [`MpiFault::Engine`]: crate::MpiFault::Engine
    /// [`SimError::EventBudgetExhausted`]: des::SimError::EventBudgetExhausted
    pub event_budget: Option<u64>,
    /// Which network model transfers use. `None` falls back to the
    /// process-global default
    /// ([`set_default_net_model`](crate::set_default_net_model)), which is
    /// [`NetModel::Event`] unless an experiment driver says otherwise.
    pub net_model: Option<NetModel>,
    /// How many DES engine shards to run this job across (see
    /// [`crate::run_mpi`]'s sharded mode). `None` falls back to the
    /// process-global default
    /// ([`set_default_shards`](crate::set_default_shards)); `Some(1)` pins
    /// the serial engine. Requests above 1 are honoured only when the job is
    /// eligible (event network model, clean fault plan, one rank per node,
    /// identity node map, no tracer/model-checker, and a partition of the
    /// topology whose shards do not share links); ineligible jobs fall back
    /// to the serial engine, so results are identical either way.
    pub shards: Option<u32>,
    /// Persist an on-disk job checkpoint every this many verified window
    /// barriers of a sharded run (see `des::ckpt` and
    /// [`JobSpec::checkpoint_every`]). `None` falls back to the
    /// process-global default
    /// ([`set_default_ckpt_every`](crate::set_default_ckpt_every));
    /// `validate` rejects `Some(0)`. Only sharded runs have window barriers,
    /// so the knob is inert on serial jobs.
    pub ckpt_every: Option<u64>,
    /// Directory for on-disk job checkpoints (`job_<fingerprint>.ckpt`).
    /// `None` falls back to the process-global default
    /// ([`set_default_ckpt_dir`](crate::set_default_ckpt_dir)); checkpoints
    /// are disabled while no directory is configured.
    pub ckpt_dir: Option<std::path::PathBuf>,
    /// Validation/benchmark knob: force-condemn the sharded schedule at this
    /// 1-based window barrier, exercising the rollback-recovery path on a
    /// job whose guard would otherwise stay clean. Recovered output is
    /// byte-identical to the serial reference (that is the property the
    /// knob exists to demonstrate). `validate` rejects `Some(0)`.
    pub condemn_at_window: Option<u64>,
}

/// Message retransmission and receive-timeout policy.
///
/// On a lossy link a transmission may be dropped; the sender backs off
/// `retrans_base * 2^min(attempt-1, 6)` and retries, giving up (and failing
/// the run with [`MpiFault::Timeout`]) after `max_retries` retransmissions.
/// `recv_timeout`, when set, bounds how long a receive waits for a matching
/// message before failing the run — this is what turns a dead peer into a
/// typed error instead of a deadlock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Base retransmission delay (doubled each attempt, capped at 64x).
    pub retrans_base: SimTime,
    /// Maximum retransmissions per message before giving up.
    pub max_retries: u32,
    /// Receive-side timeout; `None` waits forever (seed behaviour).
    pub recv_timeout: Option<SimTime>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { retrans_base: SimTime::from_micros(200), max_retries: 12, recv_timeout: None }
    }
}

impl JobSpec {
    /// A job of `ranks` single-rank nodes on a star-switched network with
    /// the platform's defaults (fmax, TCP/IP).
    pub fn new(platform: Platform, ranks: u32) -> JobSpec {
        let freq = platform.soc.fmax_ghz;
        JobSpec {
            platform,
            freq_ghz: freq,
            proto: ProtocolModel::tcp_ip(),
            topology: TopologySpec::Star { nodes: ranks },
            ranks,
            ranks_per_node: 1,
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            node_map: None,
            event_budget: None,
            net_model: None,
            shards: None,
            ckpt_every: None,
            ckpt_dir: None,
            condemn_at_window: None,
        }
    }

    /// Builder: set the protocol.
    pub fn with_proto(mut self, proto: ProtocolModel) -> JobSpec {
        self.proto = proto;
        self
    }

    /// Builder: set the CPU frequency (GHz).
    pub fn with_freq(mut self, f: f64) -> JobSpec {
        self.freq_ghz = f;
        self
    }

    /// Builder: set the topology.
    pub fn with_topology(mut self, t: TopologySpec) -> JobSpec {
        self.topology = t;
        self
    }

    /// Builder: set ranks per node.
    pub fn with_ranks_per_node(mut self, rpn: u32) -> JobSpec {
        assert!(rpn >= 1);
        self.ranks_per_node = rpn;
        self
    }

    /// Builder: set the fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> JobSpec {
        self.fault_plan = plan;
        self
    }

    /// Builder: set the retry/timeout policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> JobSpec {
        self.retry = retry;
        self
    }

    /// Builder: set a logical→physical node mapping (for restarting on
    /// spare nodes after a crash).
    pub fn with_node_map(mut self, map: Vec<u32>) -> JobSpec {
        self.node_map = Some(map);
        self
    }

    /// Builder: bound this job to at most `budget` dispatched engine events
    /// (a simulated-event watchdog; `validate` rejects `Some(0)`).
    pub fn with_event_budget(mut self, budget: Option<u64>) -> JobSpec {
        self.event_budget = budget;
        self
    }

    /// Builder: pin the network model for this job (`None` keeps the
    /// process-global default).
    pub fn with_net_model(mut self, model: Option<NetModel>) -> JobSpec {
        self.net_model = model;
        self
    }

    /// Builder: run this job across `shards` DES engine shards (`None`
    /// keeps the process-global default; `validate` rejects `Some(0)`).
    pub fn with_shards(mut self, shards: Option<u32>) -> JobSpec {
        self.shards = shards;
        self
    }

    /// Builder: persist an on-disk job checkpoint every `windows` verified
    /// window barriers of a sharded run (`None` keeps the process-global
    /// default; `validate` rejects `Some(0)`). Pair with
    /// [`JobSpec::with_ckpt_dir`] — checkpoints need a directory to land in.
    pub fn checkpoint_every(mut self, windows: Option<u64>) -> JobSpec {
        self.ckpt_every = windows;
        self
    }

    /// Builder: directory for on-disk job checkpoints (`None` keeps the
    /// process-global default).
    pub fn with_ckpt_dir(mut self, dir: Option<std::path::PathBuf>) -> JobSpec {
        self.ckpt_dir = dir;
        self
    }

    /// Builder: force-condemn the sharded schedule at the given 1-based
    /// window barrier (validation/benchmark knob; `validate` rejects
    /// `Some(0)`).
    pub fn with_condemn_at_window(mut self, window: Option<u64>) -> JobSpec {
        self.condemn_at_window = window;
        self
    }

    /// Logical node hosting a rank (before any `node_map` remapping).
    pub fn logical_node_of(&self, rank: u32) -> u32 {
        rank / self.ranks_per_node
    }

    /// Physical node hosting a rank: the logical node pushed through
    /// `node_map` when one is set. Fault plans and the network address
    /// physical nodes.
    pub fn node_of(&self, rank: u32) -> u32 {
        let logical = self.logical_node_of(rank);
        match &self.node_map {
            Some(map) => map.get(logical as usize).copied().unwrap_or(logical),
            None => logical,
        }
    }

    /// Cores available to each rank.
    pub fn cores_per_rank(&self) -> u32 {
        (self.platform.soc.cores / self.ranks_per_node).max(1)
    }

    /// Validate the spec: enough nodes, a coherent node map, and a sane
    /// retry policy.
    pub fn validate(&self) -> Result<(), JobSpecError> {
        if self.ranks == 0 {
            return Err(JobSpecError::NoRanks);
        }
        if self.ranks_per_node == 0 {
            return Err(JobSpecError::NoRanksPerNode);
        }
        let nodes_needed = self.ranks.div_ceil(self.ranks_per_node);
        let available = self.topology.nodes();
        if self.node_map.is_none() && nodes_needed > available {
            return Err(JobSpecError::TooManyNodes { needed: nodes_needed, available });
        }
        if let Some(map) = &self.node_map {
            if map.len() != nodes_needed as usize {
                return Err(JobSpecError::NodeMapLength {
                    got: map.len(),
                    expected: nodes_needed as usize,
                });
            }
            let mut seen = vec![false; available as usize];
            for &node in map {
                if node >= available {
                    return Err(JobSpecError::NodeMapOutOfRange { node, available });
                }
                if std::mem::replace(&mut seen[node as usize], true) {
                    return Err(JobSpecError::NodeMapDuplicate { node });
                }
            }
        }
        if self.retry.max_retries > 0 && self.retry.retrans_base == SimTime::ZERO {
            return Err(JobSpecError::BadRetryPolicy {
                reason: "retrans_base must be positive when retries are enabled",
            });
        }
        if self.retry.recv_timeout == Some(SimTime::ZERO) {
            return Err(JobSpecError::BadRetryPolicy {
                reason: "recv_timeout must be positive when set",
            });
        }
        if self.event_budget == Some(0) {
            return Err(JobSpecError::BadEventBudget);
        }
        if self.shards == Some(0) {
            return Err(JobSpecError::BadShards);
        }
        if self.ckpt_every == Some(0) {
            return Err(JobSpecError::BadCheckpointEvery);
        }
        if self.condemn_at_window == Some(0) {
            return Err(JobSpecError::BadCondemnWindow);
        }
        Ok(())
    }
}

/// How an in-flight message is delivered.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Delivery {
    /// Eager: data is on the wire; consumable once `available_at` passes.
    Eager {
        /// Arrival time of the last byte at the destination NIC.
        available_at: SimTime,
    },
    /// Rendezvous: only the RTS has been sent; the sender is parked waiting
    /// for the receiver to clear the transfer.
    Rendezvous {
        /// Parked sender to wake when the transfer completes.
        sender_pid: Pid,
        /// Arrival time of the RTS at the receiver.
        rts_arrival: SimTime,
    },
    /// Flow model: the data rides a fluid flow in [`WorldState::flows`];
    /// consumable once the flow completes (the receiver polls it).
    Flow {
        /// The flow's id in the job's [`FlowNet`].
        id: netsim::FlowId,
        /// Endpoint time past the flow's network completion: path latency
        /// plus any endpoint serialisation slower than the wire.
        extra: SimTime,
    },
}

/// An in-flight or delivered message in a rank's mailbox.
#[derive(Debug)]
pub(crate) struct InMsg {
    pub src: u32,
    pub tag: u32,
    pub msg: Msg,
    pub delivery: Delivery,
}

/// Receive filter: `None` matches any source/tag.
pub(crate) type RecvFilter = (Option<u32>, Option<u32>);

pub(crate) fn matches(filter: &RecvFilter, src: u32, tag: u32) -> bool {
    filter.0.is_none_or(|s| s == src) && filter.1.is_none_or(|t| t == tag)
}

#[derive(Debug, Default)]
pub(crate) struct RankState {
    pub pid: Option<Pid>,
    pub mailbox: VecDeque<InMsg>,
    /// Set while the rank is parked inside `recv` waiting for a match.
    pub pending: Option<RecvFilter>,
    /// Accumulated modelled compute time.
    pub compute_busy: SimTime,
    /// Accumulated communication (protocol CPU) time.
    pub comm_busy: SimTime,
}

/// Aggregate job statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetStats {
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub payload_bytes: u64,
    /// Transmissions repeated because a lossy link dropped the frame.
    pub retransmits: u64,
}

pub(crate) struct WorldState {
    pub net: Network,
    /// The fluid network, present iff the job runs under [`NetModel::Flow`].
    pub flows: Option<FlowNet>,
    pub ranks: Vec<RankState>,
    pub stats: NetStats,
    /// First injected fault that surfaced; `run_mpi` reports this instead of
    /// the engine's generic unwind error.
    pub fault: Option<MpiFault>,
    /// Deterministic stream for loss draws (one per run, seeded from the
    /// fault plan so clean plans share no state with faulty ones).
    pub rng: SimRng,
}

/// The shared world of one job.
pub struct World {
    pub(crate) spec: JobSpec,
    /// The resolved network model (spec override or process-global default).
    pub(crate) net_model: NetModel,
    pub(crate) ep: EndpointModel,
    /// Timing-cache fingerprint of the job's SoC, computed once so the hot
    /// per-rank `compute` path avoids re-fingerprinting the platform model.
    pub(crate) soc_fp: u64,
    pub(crate) state: Mutex<WorldState>,
}

impl World {
    pub(crate) fn new(spec: JobSpec) -> World {
        spec.validate().expect("invalid job spec");
        let soc_fp = soc_arch::soc_fingerprint(&spec.platform.soc);
        let ep = EndpointModel::for_platform(&spec.platform, spec.freq_ghz);
        let net_model = spec.net_model.unwrap_or_else(crate::rank::default_net_model);
        let link_bw = spec.platform.eth_mbit.max(1000) as f64 / 8.0 * 1e6; // cluster NICs are 1GbE
        let link_latency = SimTime::from_micros_f64(1.25);
        let flows = (net_model == NetModel::Flow)
            .then(|| FlowNet::new(spec.topology, link_bw, link_latency));
        let mut net = Network::new(spec.topology, link_bw, link_latency);
        // Link-degradation faults live in the network layer as loss windows;
        // senders consult them per transmission attempt.
        for ev in spec.fault_plan.events() {
            if let FaultKind::LinkDegrade { node, loss, duration } = ev.kind {
                if node < spec.topology.nodes() {
                    net.add_loss_window(LossWindow {
                        node,
                        from: ev.at,
                        until: ev.at + duration,
                        loss,
                    });
                }
            }
        }
        let ranks = (0..spec.ranks).map(|_| RankState::default()).collect();
        // Tag chosen arbitrarily; it only has to differ from the substreams
        // FaultPlan::generate uses for event scheduling.
        let rng = SimRng::new(spec.fault_plan.seed()).substream(0x1055_d4a3);
        World {
            spec,
            net_model,
            ep,
            soc_fp,
            state: Mutex::new(WorldState {
                net,
                flows,
                ranks,
                stats: NetStats::default(),
                fault: None,
                rng,
            }),
        }
    }

    /// Wire bytes for a payload including framing and protocol headers.
    pub(crate) fn framed(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.spec.proto.wire_efficiency) as u64 + FRAME_BYTES
    }

    /// Endpoint-side per-byte injection/retirement rate (bytes/s): the CPU
    /// copy stage and the attach path in series with the DMA pipeline.
    pub(crate) fn cpu_stage_rate(&self) -> f64 {
        let cpu = if self.spec.proto.per_byte_cpu_ns > 0.0 {
            self.ep.scalar_speed * 1e9 / self.spec.proto.per_byte_cpu_ns
        } else {
            f64::INFINITY
        };
        cpu.min(self.ep.attach.rate_bytes(self.ep.scalar_speed))
    }

    /// End-to-end sustained rate between two nodes (homogeneous endpoints).
    pub(crate) fn stream_rate(&self, link_bw: f64) -> f64 {
        self.spec.proto.stream_rate_bytes(&self.ep, &self.ep, link_bw)
    }

    /// Extra serialisation beyond the wire's own, accounting for endpoint
    /// stages slower than the wire.
    pub(crate) fn endpoint_extra_serial(&self, bytes: u64, link_bw: f64) -> SimTime {
        let total = self.stream_rate(link_bw);
        let wire = link_bw * self.spec.proto.wire_efficiency;
        if total >= wire {
            return SimTime::ZERO;
        }
        SimTime::from_secs_f64(bytes as f64 * (1.0 / total - 1.0 / wire))
    }

    /// Order-insensitive digest of the message-visible world state for the
    /// model checker's state deduplication (see `des::mc`).
    ///
    /// Hashes each rank's mailbox contents, posted receive filter, liveness
    /// and any surfaced fault. Wire times are folded in relative to `now` so
    /// states differing only by an absolute-time shift still collide, while
    /// statistics counters and the RNG are deliberately excluded: they do not
    /// influence future protocol behaviour under the controller (drops come
    /// from the controller, not the RNG).
    pub(crate) fn mc_state_hash(&self, now: SimTime) -> u64 {
        let st = self.state.lock();
        let now_ns = now.as_nanos();
        let mut h = 0x6d63_776f_726c_6421u64;
        for (i, r) in st.ranks.iter().enumerate() {
            let mut rh = des::mc::mix(0x5b21, i as u64);
            rh = des::mc::mix(rh, r.pid.is_some() as u64);
            rh = des::mc::mix(
                rh,
                match r.pending {
                    None => 0,
                    Some((s, t)) => {
                        1 | (s.map_or(0, |s| (s as u64 + 1) << 1))
                            | (t.map_or(0, |t| (t as u64 + 1) << 33))
                    }
                },
            );
            // The mailbox is FIFO per rank, so hash it in order.
            for m in &r.mailbox {
                rh = des::mc::mix(rh, (m.src as u64) << 32 | m.tag as u64);
                rh = des::mc::mix(rh, m.msg.bytes);
                rh = des::mc::mix(
                    rh,
                    match m.delivery {
                        Delivery::Eager { available_at } => {
                            des::mc::mix(1, available_at.as_nanos().saturating_sub(now_ns))
                        }
                        Delivery::Rendezvous { sender_pid, rts_arrival } => des::mc::mix(
                            2 | (sender_pid.index() as u64) << 2,
                            rts_arrival.as_nanos().saturating_sub(now_ns),
                        ),
                        Delivery::Flow { id, extra } => {
                            des::mc::mix(3 | (id << 2), extra.as_nanos())
                        }
                    },
                );
            }
            h = des::mc::mix(h, rh);
        }
        des::mc::mix(h, st.fault.is_some() as u64)
    }

    /// Engine-layout-independent digest of the whole simulated world at a
    /// cut, for window checkpoints (`des::ckpt`). Unlike
    /// [`World::mc_state_hash`] this certifies *everything* observable in
    /// the run's outputs — mailboxes, posted receives, accumulated
    /// busy-time, network statistics, per-link reservation horizons, and
    /// in-flight fluid flows — with two deliberate layout independences:
    ///
    /// * **Mailboxes hash as multisets.** A sharded barrier replay may
    ///   interleave a rank's local and cross-shard pushes differently from
    ///   the serial order while matching behaviour stays identical (each
    ///   `(src, tag)` stream remains FIFO, and the receives that *could*
    ///   observe the interleaving — wildcards — condemn the schedule before
    ///   a checkpoint is taken). Order therefore must not influence the
    ///   hash, or equal cuts would fingerprint unequally.
    /// * **Pids never hash.** Process ids depend on spawn order inside each
    ///   engine, so a serial replay's pids differ from the sharded run's;
    ///   everything is keyed by rank index, and a rendezvous delivery is
    ///   identified by `(src, tag, rts_arrival)` instead of its parked
    ///   sender's pid.
    ///
    /// Times are absolute (the cut is at one global instant on every
    /// layout). The RNG is excluded: shard-eligible jobs have clean fault
    /// plans, so no loss draw ever advances it.
    pub(crate) fn ckpt_state_hash(&self) -> u64 {
        let st = self.state.lock();
        let mut h = 0x636b_7074_776f_726cu64;
        for (i, r) in st.ranks.iter().enumerate() {
            let mut rh = des::mc::mix(0xc4a7, i as u64);
            rh = des::mc::mix(rh, r.pid.is_some() as u64);
            rh = des::mc::mix(
                rh,
                match r.pending {
                    None => 0,
                    Some((s, t)) => {
                        1 | (s.map_or(0, |s| (s as u64 + 1) << 1))
                            | (t.map_or(0, |t| (t as u64 + 1) << 33))
                    }
                },
            );
            rh = des::mc::mix(rh, r.compute_busy.as_nanos());
            rh = des::mc::mix(rh, r.comm_busy.as_nanos());
            let mut mb = 0u64;
            for m in &r.mailbox {
                let mut mh = des::mc::mix(0x6d, (m.src as u64) << 32 | m.tag as u64);
                mh = des::mc::mix(mh, m.msg.bytes);
                mh = des::mc::mix(
                    mh,
                    match m.delivery {
                        Delivery::Eager { available_at } => {
                            des::mc::mix(1, available_at.as_nanos())
                        }
                        Delivery::Rendezvous { rts_arrival, .. } => {
                            des::mc::mix(2, rts_arrival.as_nanos())
                        }
                        Delivery::Flow { id, extra } => {
                            des::mc::mix(3 | (id << 2), extra.as_nanos())
                        }
                    },
                );
                mb = mb.wrapping_add(mh);
            }
            rh = des::mc::mix(rh, mb);
            h = des::mc::mix(h, rh);
        }
        h = des::mc::mix(h, st.stats.messages);
        h = des::mc::mix(h, st.stats.payload_bytes);
        h = des::mc::mix(h, st.stats.retransmits);
        h = des::mc::mix(h, st.net.reservation_fingerprint());
        if let Some(flows) = &st.flows {
            h = des::mc::mix(h, flows.state_fingerprint());
        }
        des::mc::mix(h, st.fault.is_some() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_defaults_and_builders() {
        let spec = JobSpec::new(Platform::tegra2(), 4)
            .with_proto(ProtocolModel::open_mx())
            .with_freq(0.912)
            .with_ranks_per_node(2);
        assert_eq!(spec.proto.name, "Open-MX");
        assert_eq!(spec.freq_ghz, 0.912);
        assert_eq!(spec.node_of(0), 0);
        assert_eq!(spec.node_of(3), 1);
        assert_eq!(spec.cores_per_rank(), 1);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn validation_rejects_overcommit() {
        let mut spec = JobSpec::new(Platform::tegra2(), 8);
        spec.topology = TopologySpec::Star { nodes: 4 };
        assert!(spec.validate().is_err());
        spec.ranks_per_node = 2;
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn validation_checks_node_map() {
        let base =
            JobSpec::new(Platform::tegra2(), 4).with_topology(TopologySpec::Star { nodes: 6 });
        assert!(base.clone().with_node_map(vec![5, 4, 3, 2]).validate().is_ok());
        assert_eq!(
            base.clone().with_node_map(vec![0, 1]).validate(),
            Err(JobSpecError::NodeMapLength { got: 2, expected: 4 })
        );
        assert_eq!(
            base.clone().with_node_map(vec![0, 1, 2, 6]).validate(),
            Err(JobSpecError::NodeMapOutOfRange { node: 6, available: 6 })
        );
        assert_eq!(
            base.clone().with_node_map(vec![0, 1, 2, 1]).validate(),
            Err(JobSpecError::NodeMapDuplicate { node: 1 })
        );
        // The map redirects physical placement without renumbering ranks.
        let spec = base.with_node_map(vec![5, 4, 3, 2]);
        assert_eq!(spec.logical_node_of(2), 2);
        assert_eq!(spec.node_of(2), 3);
    }

    #[test]
    fn validation_checks_retry_policy() {
        let mut spec = JobSpec::new(Platform::tegra2(), 2);
        spec.retry.retrans_base = SimTime::ZERO;
        assert!(matches!(spec.validate(), Err(JobSpecError::BadRetryPolicy { .. })));
        spec.retry.max_retries = 0; // no retries -> zero base is fine
        assert!(spec.validate().is_ok());
        spec.retry.recv_timeout = Some(SimTime::ZERO);
        assert!(matches!(spec.validate(), Err(JobSpecError::BadRetryPolicy { .. })));
    }

    #[test]
    fn fault_plan_degrade_windows_reach_the_network() {
        use des::FaultEvent;
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_millis(1),
            kind: FaultKind::LinkDegrade { node: 1, loss: 0.5, duration: SimTime::from_millis(2) },
        }]);
        let w = World::new(JobSpec::new(Platform::tegra2(), 4).with_fault_plan(plan));
        let st = w.state.lock();
        assert_eq!(st.net.loss_probability(0, 1, SimTime::from_millis(2)), 0.5);
        assert_eq!(st.net.loss_probability(0, 1, SimTime::from_millis(4)), 0.0);
    }

    #[test]
    fn filter_matching() {
        assert!(matches(&(None, None), 3, 7));
        assert!(matches(&(Some(3), None), 3, 7));
        assert!(!matches(&(Some(4), None), 3, 7));
        assert!(matches(&(None, Some(7)), 3, 7));
        assert!(!matches(&(Some(3), Some(8)), 3, 7));
    }

    #[test]
    fn framed_adds_overhead() {
        let w = World::new(JobSpec::new(Platform::tegra2(), 2));
        assert!(w.framed(1000) > 1000);
        assert_eq!(w.framed(0), FRAME_BYTES);
    }

    #[test]
    fn endpoint_extra_serial_positive_when_cpu_bound() {
        // Tegra 2 + TCP is CPU-bound at ~65 MB/s < 119 MB/s wire.
        let w = World::new(JobSpec::new(Platform::tegra2(), 2));
        let extra = w.endpoint_extra_serial(1 << 20, 125e6);
        assert!(extra > SimTime::ZERO);
        // Open-MX is wire-bound: no extra.
        let w2 =
            World::new(JobSpec::new(Platform::tegra2(), 2).with_proto(ProtocolModel::open_mx()));
        assert_eq!(w2.endpoint_extra_serial(1 << 20, 125e6), SimTime::ZERO);
    }
}
