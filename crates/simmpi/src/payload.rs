//! Message payloads.
//!
//! Applications run in two modes (DESIGN.md §4.3): *Execute* sends real data
//! (`Msg::from_f64s` etc.), *Model* sends size-only messages. Both take the
//! same timing path; only the presence of bytes differs.

use bytes::Bytes;

/// A message payload: a byte count for timing, and optionally the bytes
/// themselves.
#[derive(Clone, Debug, PartialEq)]
pub struct Msg {
    /// Payload size in bytes (drives all timing).
    pub bytes: u64,
    /// The data, when running in Execute mode. `Bytes` makes broadcast
    /// fan-out cheap (reference-counted, no copies).
    pub data: Option<Bytes>,
}

impl Msg {
    /// An empty message (synchronisation only).
    pub fn empty() -> Msg {
        Msg { bytes: 0, data: None }
    }

    /// A size-only message (Model mode).
    pub fn size_only(bytes: u64) -> Msg {
        Msg { bytes, data: None }
    }

    /// A message carrying raw bytes.
    pub fn from_bytes(data: impl Into<Bytes>) -> Msg {
        let data = data.into();
        Msg { bytes: data.len() as u64, data: Some(data) }
    }

    /// A message carrying a slice of `f64`s (little-endian).
    pub fn from_f64s(values: &[f64]) -> Msg {
        let mut buf = Vec::with_capacity(values.len() * 8);
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Msg::from_bytes(buf)
    }

    /// A message carrying a slice of `u64`s (little-endian).
    pub fn from_u64s(values: &[u64]) -> Msg {
        let mut buf = Vec::with_capacity(values.len() * 8);
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Msg::from_bytes(buf)
    }

    /// Decode the payload as `f64`s. Panics if the message is size-only or
    /// not a multiple of 8 bytes.
    pub fn to_f64s(&self) -> Vec<f64> {
        let data = self.data.as_ref().expect("size-only message has no data");
        assert!(data.len().is_multiple_of(8), "payload is not a sequence of f64");
        data.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect()
    }

    /// Decode the payload as `u64`s.
    pub fn to_u64s(&self) -> Vec<u64> {
        let data = self.data.as_ref().expect("size-only message has no data");
        assert!(data.len().is_multiple_of(8), "payload is not a sequence of u64");
        data.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        let v = vec![1.5, -2.25, 0.0, f64::MAX];
        let m = Msg::from_f64s(&v);
        assert_eq!(m.bytes, 32);
        assert_eq!(m.to_f64s(), v);
    }

    #[test]
    fn u64_round_trip() {
        let v = vec![0u64, 42, u64::MAX];
        assert_eq!(Msg::from_u64s(&v).to_u64s(), v);
    }

    #[test]
    fn size_only_reports_bytes_without_data() {
        let m = Msg::size_only(1 << 20);
        assert_eq!(m.bytes, 1 << 20);
        assert!(m.data.is_none());
    }

    #[test]
    #[should_panic(expected = "size-only")]
    fn decoding_size_only_panics() {
        Msg::size_only(8).to_f64s();
    }

    #[test]
    fn broadcast_clone_shares_data() {
        let m = Msg::from_f64s(&[1.0; 1000]);
        let c = m.clone();
        // Bytes clones share the allocation: same pointer.
        assert_eq!(m.data.as_ref().unwrap().as_ptr(), c.data.as_ref().unwrap().as_ptr());
    }
}
