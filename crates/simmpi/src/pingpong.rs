//! The Intel MPI Benchmarks ping-pong test (§4.1): "measures the time and
//! bandwidth to exchange one message between two MPI processes". This is the
//! workload behind every panel of Fig 7.

use serde::{Deserialize, Serialize};

use crate::payload::Msg;
use crate::rank::run_mpi;
use crate::world::JobSpec;

/// One ping-pong measurement point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PingPongPoint {
    /// Message size in bytes.
    pub bytes: u64,
    /// Half round-trip time ("latency"), µs.
    pub latency_us: f64,
    /// Effective bandwidth, MB/s (`bytes / latency`).
    pub bandwidth_mbs: f64,
}

/// Run the IMB ping-pong between ranks 0 and 1 of a 2-rank job, for each
/// message size, with `reps` exchanges per size (the reported value is the
/// mean half-RTT).
pub fn pingpong(spec: JobSpec, sizes: &[u64], reps: u32) -> Vec<PingPongPoint> {
    assert!(spec.ranks == 2, "ping-pong needs exactly two ranks");
    assert!(reps >= 1);
    let sizes_owned: Vec<u64> = sizes.to_vec();
    let run = run_mpi(spec, move |mut r| {
        let sizes = sizes_owned.clone();
        async move {
            let mut times_us = Vec::with_capacity(sizes.len());
            for (i, &bytes) in sizes.iter().enumerate() {
                let tag = i as u32;
                r.barrier().await;
                let t0 = r.now();
                for _ in 0..reps {
                    if r.rank() == 0 {
                        r.send(1, tag, Msg::size_only(bytes)).await;
                        r.recv(1, tag).await;
                    } else {
                        r.recv(0, tag).await;
                        r.send(0, tag, Msg::size_only(bytes)).await;
                    }
                }
                let rtt = (r.now() - t0).as_micros_f64() / reps as f64;
                times_us.push(rtt / 2.0);
            }
            times_us
        }
    })
    .expect("ping-pong simulation failed");

    sizes
        .iter()
        .zip(&run.results[0])
        .map(|(&bytes, &latency_us)| PingPongPoint {
            bytes,
            latency_us,
            bandwidth_mbs: if latency_us > 0.0 { bytes as f64 / latency_us } else { 0.0 },
        })
        .collect()
}

/// The message sizes of Fig 7(a–c): 0–64 bytes.
pub fn small_sizes() -> Vec<u64> {
    (0..=64).step_by(8).collect()
}

/// The message sizes of Fig 7(d–f): powers of two from 1 B to 16 MiB.
pub fn large_sizes() -> Vec<u64> {
    (0..=24).map(|e| 1u64 << e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::ProtocolModel;
    use soc_arch::Platform;

    fn t2_spec(proto: ProtocolModel) -> JobSpec {
        JobSpec::new(Platform::tegra2(), 2).with_proto(proto)
    }

    #[test]
    fn tegra2_tcp_small_message_latency_near_100us() {
        let pts = pingpong(t2_spec(ProtocolModel::tcp_ip()), &[4], 3);
        assert!((90.0..112.0).contains(&pts[0].latency_us), "latency {} us", pts[0].latency_us);
    }

    #[test]
    fn tegra2_openmx_small_message_latency_near_65us() {
        let pts = pingpong(t2_spec(ProtocolModel::open_mx()), &[4], 3);
        assert!((58.0..72.0).contains(&pts[0].latency_us), "latency {} us", pts[0].latency_us);
    }

    #[test]
    fn tegra2_bandwidth_saturates_near_protocol_limits() {
        // Fig 7(d): TCP tops out near 65 MB/s, Open-MX near 117 MB/s.
        let tcp = pingpong(t2_spec(ProtocolModel::tcp_ip()), &[16 << 20], 1);
        let omx = pingpong(t2_spec(ProtocolModel::open_mx()), &[16 << 20], 1);
        assert!((58.0..72.0).contains(&tcp[0].bandwidth_mbs), "TCP {}", tcp[0].bandwidth_mbs);
        assert!((105.0..122.0).contains(&omx[0].bandwidth_mbs), "OMX {}", omx[0].bandwidth_mbs);
    }

    #[test]
    fn bandwidth_grows_with_message_size() {
        let pts = pingpong(t2_spec(ProtocolModel::tcp_ip()), &[64, 4096, 1 << 20], 1);
        assert!(pts[0].bandwidth_mbs < pts[1].bandwidth_mbs);
        assert!(pts[1].bandwidth_mbs < pts[2].bandwidth_mbs);
    }

    #[test]
    fn exynos_usb_is_slower_than_tegra_pcie() {
        // Fig 7(b) vs 7(a): the USB attach path costs latency despite the
        // faster A15 core.
        let e5 = JobSpec::new(Platform::exynos5250(), 2)
            .with_freq(1.0)
            .with_proto(ProtocolModel::tcp_ip());
        let t2 =
            JobSpec::new(Platform::tegra2(), 2).with_freq(1.0).with_proto(ProtocolModel::tcp_ip());
        let le5 = pingpong(e5, &[4], 2)[0].latency_us;
        let lt2 = pingpong(t2, &[4], 2)[0].latency_us;
        assert!(le5 > lt2, "Exynos {le5} us should exceed Tegra2 {lt2} us");
    }

    #[test]
    fn size_lists_are_sane() {
        assert_eq!(small_sizes().first(), Some(&0));
        assert_eq!(small_sizes().last(), Some(&64));
        assert_eq!(large_sizes().last(), Some(&(16 << 20)));
    }
}
