//! The per-rank API: point-to-point messaging, modelled compute, and the job
//! runner.
//!
//! ## Execution model
//!
//! Every rank is an **event-driven des process**: the rank body is an `async`
//! future polled inline by the engine, so a 4096-rank job runs in a single
//! OS thread. All blocking primitives (`send`, `recv`, collectives, modelled
//! compute) are `async fn`s whose only suspension points are the engine's
//! deterministic leaf futures — the event order, and therefore every virtual
//! time and RNG draw, is identical to the historical thread-per-rank model.
//!
//! ## Fault semantics
//!
//! Faults come from the job's [`FaultPlan`](des::FaultPlan) and surface as a
//! typed [`MpiFault`] from [`run_mpi`] instead of a hang or a panic message:
//!
//! * **Node crash** — every rank caches its node's crash time up front; every
//!   virtual-time advance (compute, backoff, wire waits) is split at that
//!   instant and every park carries it as a deadline, so the rank detects its
//!   own death at *exactly* the crash's virtual time, records
//!   [`MpiFault::RankDied`] in the world, and unwinds. There is no injector
//!   process: the schedule is static, so self-checks are both sufficient and
//!   immune to stale-wakeup races.
//! * **Lossy links** — senders consult the network's loss windows per
//!   transmission attempt and draw from the world's deterministic RNG;
//!   dropped frames cost an exponential backoff (`retrans_base * 2^n`,
//!   capped) and exhaust into [`MpiFault::Timeout`]. The rendezvous RTS/CTS
//!   handshake is assumed reliable (control frames are tiny and would be
//!   protected in a real transport); loss applies to eager payloads and the
//!   rendezvous bulk transfer.
//! * **Receive timeout** — when the retry policy sets one, a receive that
//!   finds no matching message by its deadline fails the run with
//!   [`MpiFault::Timeout`] rather than deadlocking.
//!
//! The first fault to strike wins; the engine aborts the run at that virtual
//! instant and `run_mpi` reports it.

use std::future::Future;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use des::{Engine, ProcCtx, SimTime, TraceEvent, Tracer};
use netsim::{CondemnReason, FlowStatus, NetModel, Partition};
use parking_lot::Mutex;
use soc_arch::WorkProfile;

use crate::error::MpiFault;
use crate::payload::Msg;
use crate::shard::{apply_cross_packets, Packet, ShardCtx};
use crate::world::{matches, Delivery, InMsg, JobSpec, NetStats, World};

/// Process-global default engine-event budget applied to every [`run_mpi`]
/// job whose spec leaves `event_budget` unset. `0` = unlimited.
static DEFAULT_EVENT_BUDGET: AtomicU64 = AtomicU64::new(0);

/// Set the process-global default event budget for jobs that do not set
/// [`JobSpec::event_budget`] themselves (the `repro --max-cell-events`
/// plumbing: one switch bounds every simulation a sweep runs without
/// threading a parameter through every driver signature). `None` or
/// `Some(0)` removes the default.
pub fn set_default_event_budget(budget: Option<u64>) {
    DEFAULT_EVENT_BUDGET.store(budget.unwrap_or(0), Ordering::Relaxed);
}

/// The current process-global default event budget, if any.
pub fn default_event_budget() -> Option<u64> {
    match DEFAULT_EVENT_BUDGET.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Process-global default tracer installed on every [`run_mpi`] engine (the
/// same one-switch pattern as the event budget: `repro --trace` enables
/// tracing for every simulation a sweep runs without threading a parameter
/// through every driver signature).
static DEFAULT_TRACER: std::sync::Mutex<Option<Arc<dyn Tracer>>> = std::sync::Mutex::new(None);

/// Install (or, with `None`, remove) the process-global default
/// [`Tracer`](des::Tracer). Every subsequent [`run_mpi`] engine gets it via
/// [`Engine::set_tracer`](des::Engine::set_tracer); jobs already running are
/// unaffected. Tracing is observational only — results stay bit-identical.
pub fn set_default_tracer(tracer: Option<Arc<dyn Tracer>>) {
    *DEFAULT_TRACER.lock().expect("default tracer lock poisoned") = tracer;
}

/// The current process-global default tracer, if any.
pub fn default_tracer() -> Option<Arc<dyn Tracer>> {
    DEFAULT_TRACER.lock().expect("default tracer lock poisoned").clone()
}

/// Process-global default network model for jobs whose spec leaves
/// [`JobSpec::net_model`] unset (the `repro --net-model` plumbing; same
/// one-switch pattern as the event budget and tracer). `0` = event, `1` =
/// flow.
static DEFAULT_NET_MODEL: AtomicU8 = AtomicU8::new(0);

/// Set the process-global default [`NetModel`] applied to every subsequent
/// [`run_mpi`] job that does not pin one via
/// [`JobSpec::with_net_model`](crate::JobSpec::with_net_model). Jobs already
/// running are unaffected.
pub fn set_default_net_model(model: NetModel) {
    DEFAULT_NET_MODEL.store(matches!(model, NetModel::Flow) as u8, Ordering::Relaxed);
}

/// The current process-global default network model
/// ([`NetModel::Event`] unless overridden).
pub fn default_net_model() -> NetModel {
    match DEFAULT_NET_MODEL.load(Ordering::Relaxed) {
        0 => NetModel::Event,
        _ => NetModel::Flow,
    }
}

/// Process-global default shard count for jobs whose spec leaves
/// [`JobSpec::shards`] unset (the `repro --shards` plumbing; same
/// one-switch pattern as the event budget and net model). `0` = unset.
static DEFAULT_SHARDS: AtomicU32 = AtomicU32::new(0);

/// Set the process-global default shard count applied to every subsequent
/// [`run_mpi`] job that does not pin one via
/// [`JobSpec::with_shards`](crate::JobSpec::with_shards). `None` or
/// `Some(0)` removes the default (serial engine).
///
/// Like every process-global default here, the value is **snapshotted once
/// when `run_mpi` starts a job**: changing a default concurrently with a
/// running job — including from another of that job's own shard threads —
/// cannot affect it (see the shard-safety regression test in
/// `tests/shard_safety.rs`).
pub fn set_default_shards(shards: Option<u32>) {
    DEFAULT_SHARDS.store(shards.unwrap_or(0), Ordering::Relaxed);
}

/// The effective process-global default shard count (`1` = serial engine).
pub fn default_shards() -> u32 {
    DEFAULT_SHARDS.load(Ordering::Relaxed).max(1)
}

/// Process-global default disk-checkpoint period (windows) for jobs whose
/// spec leaves [`JobSpec::ckpt_every`] unset (the `repro --ckpt-every`
/// plumbing). `0` = no disk checkpoints.
static DEFAULT_CKPT_EVERY: AtomicU64 = AtomicU64::new(0);

/// Set the process-global default disk-checkpoint period applied to every
/// subsequent sharded [`run_mpi`] job that does not pin one via
/// [`JobSpec::checkpoint_every`](crate::JobSpec::checkpoint_every). `None`
/// or `Some(0)` removes the default.
pub fn set_default_ckpt_every(windows: Option<u64>) {
    DEFAULT_CKPT_EVERY.store(windows.unwrap_or(0), Ordering::Relaxed);
}

/// The current process-global default disk-checkpoint period, if any.
pub fn default_ckpt_every() -> Option<u64> {
    match DEFAULT_CKPT_EVERY.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Process-global default checkpoint directory for jobs whose spec leaves
/// [`JobSpec::ckpt_dir`] unset (the `repro --ckpt-dir` plumbing).
static DEFAULT_CKPT_DIR: std::sync::Mutex<Option<std::path::PathBuf>> = std::sync::Mutex::new(None);

/// Set (or, with `None`, remove) the process-global default checkpoint
/// directory. Disk checkpoints need both a directory and a period; each
/// job's checkpoint file inside the directory is named from the job-spec
/// fingerprint, so concurrent sweeps of distinct cells never collide.
pub fn set_default_ckpt_dir(dir: Option<std::path::PathBuf>) {
    *DEFAULT_CKPT_DIR.lock().expect("default ckpt dir lock poisoned") = dir;
}

/// The current process-global default checkpoint directory, if any.
pub fn default_ckpt_dir() -> Option<std::path::PathBuf> {
    DEFAULT_CKPT_DIR.lock().expect("default ckpt dir lock poisoned").clone()
}

/// Process-global switch selecting the *legacy* condemnation behaviour
/// (wind the condemned windowed schedule down, then rerun the whole job
/// serially from scratch) instead of checkpoint rollback. Kept only for the
/// `scale_bench` recovery ablation, which measures what rollback saves.
static DEFAULT_CONDEMN_WINDDOWN: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Select the legacy wind-down-then-full-rerun condemnation path (`true`)
/// or checkpoint rollback (`false`, the default). Snapshotted at job start
/// like every other process-global default. Both paths produce
/// byte-identical results; they differ only in wall-clock cost.
pub fn set_default_condemn_winddown(winddown: bool) {
    DEFAULT_CONDEMN_WINDDOWN.store(winddown, Ordering::Relaxed);
}

/// Whether the legacy wind-down condemnation path is selected.
pub fn default_condemn_winddown() -> bool {
    DEFAULT_CONDEMN_WINDDOWN.load(Ordering::Relaxed)
}

// Process-wide condemnation/recovery tallies, accumulated across every
// `run_mpi` job since process start. The bench sweep driver snapshots them
// around a sweep (`CondemnTelemetry::since`) to report recovery outcomes in
// `_sweep_stats.json` without threading counters through every driver.
static CONDEMNED_RUNS: AtomicU64 = AtomicU64::new(0);
static CONDEMNED_EVENTS: AtomicU64 = AtomicU64::new(0);
static CONDEMNED_WALL_US: AtomicU64 = AtomicU64::new(0);
static RECOVERY_WINDOWS_RECORDED: AtomicU64 = AtomicU64::new(0);
static RECOVERY_WINDOWS_VERIFIED: AtomicU64 = AtomicU64::new(0);
static RECOVERY_WALL_US: AtomicU64 = AtomicU64::new(0);
static RESUME_VERIFIED_RUNS: AtomicU64 = AtomicU64::new(0);
static CKPTS_WRITTEN: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide condemnation/recovery counters (see
/// [`condemn_telemetry`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CondemnTelemetry {
    /// Sharded runs condemned by the exactness guard (either path).
    pub condemned_runs: u64,
    /// Engine events the condemned attempts had dispatched when condemned
    /// (rollback) or when their wind-down finished (legacy).
    pub condemned_events: u64,
    /// Host wall-clock seconds spent in condemned sharded attempts.
    pub condemned_wall_s: f64,
    /// Window checkpoints the condemned attempts had recorded.
    pub windows_recorded: u64,
    /// Recovery-replay barriers re-certified against those checkpoints.
    pub windows_verified: u64,
    /// Host wall-clock seconds spent in recovery replays (or legacy serial
    /// reruns).
    pub recovery_wall_s: f64,
    /// Runs whose on-disk checkpoint certified a bit-identical resume.
    pub resumed_verified: u64,
    /// On-disk checkpoints written (fsync'd temp-and-rename commits).
    pub ckpts_written: u64,
}

impl CondemnTelemetry {
    /// The counter deltas accumulated since `baseline` was snapshotted.
    pub fn since(&self, baseline: &CondemnTelemetry) -> CondemnTelemetry {
        CondemnTelemetry {
            condemned_runs: self.condemned_runs - baseline.condemned_runs,
            condemned_events: self.condemned_events - baseline.condemned_events,
            condemned_wall_s: self.condemned_wall_s - baseline.condemned_wall_s,
            windows_recorded: self.windows_recorded - baseline.windows_recorded,
            windows_verified: self.windows_verified - baseline.windows_verified,
            recovery_wall_s: self.recovery_wall_s - baseline.recovery_wall_s,
            resumed_verified: self.resumed_verified - baseline.resumed_verified,
            ckpts_written: self.ckpts_written - baseline.ckpts_written,
        }
    }
}

/// Snapshot the process-wide condemnation/recovery counters.
pub fn condemn_telemetry() -> CondemnTelemetry {
    CondemnTelemetry {
        condemned_runs: CONDEMNED_RUNS.load(Ordering::Relaxed),
        condemned_events: CONDEMNED_EVENTS.load(Ordering::Relaxed),
        condemned_wall_s: CONDEMNED_WALL_US.load(Ordering::Relaxed) as f64 / 1e6,
        windows_recorded: RECOVERY_WINDOWS_RECORDED.load(Ordering::Relaxed),
        windows_verified: RECOVERY_WINDOWS_VERIFIED.load(Ordering::Relaxed),
        recovery_wall_s: RECOVERY_WALL_US.load(Ordering::Relaxed) as f64 / 1e6,
        resumed_verified: RESUME_VERIFIED_RUNS.load(Ordering::Relaxed),
        ckpts_written: CKPTS_WRITTEN.load(Ordering::Relaxed),
    }
}

/// A rank's handle to the simulated job. Passed by value to the rank body
/// closure by [`run_mpi`]; the body moves it into its `async` block.
pub struct Rank {
    ctx: ProcCtx,
    rank: u32,
    world: Arc<World>,
    /// Physical node hosting this rank.
    node: u32,
    /// When this rank's node crashes, per the fault plan.
    crash_at: Option<SimTime>,
    /// Scheduled DRAM bit-flips on this node, sorted ascending.
    flips: Vec<SimTime>,
    /// Flips already consumed by [`Rank::poll_bit_flip`].
    flips_seen: usize,
    /// On a sharded run: this rank's shard index and the run's cross-shard
    /// routing state. `None` on a serial run.
    shard: Option<(u16, Arc<ShardCtx>)>,
}

/// Result of a completed job.
#[derive(Debug)]
pub struct MpiRun<R> {
    /// Virtual wall-clock time of the job (last rank to finish).
    pub elapsed: SimTime,
    /// Per-rank return values, in rank order.
    pub results: Vec<R>,
    /// Per-rank modelled compute-busy time.
    pub compute_busy: Vec<SimTime>,
    /// Per-rank communication (protocol CPU) busy time.
    pub comm_busy: Vec<SimTime>,
    /// Network statistics.
    pub net: NetStats,
    /// Engine events dispatched by the run (the simulation-cost currency the
    /// network models trade in; `scale_bench` reports events/sec from this).
    pub events: u64,
    /// DES engines the job actually executed on: the shard count for a
    /// windowed run, 1 for the serial engine — including when a sharded
    /// attempt was condemned by the exactness guard and recovered serially
    /// (see `crate::shard`).
    pub shards: u32,
    /// `Some` when a sharded attempt was condemned by the exactness guard
    /// and the job was recovered on one engine — how, why, and what it
    /// cost. `None` for every run that completed on its first schedule.
    pub recovery: Option<RecoveryStats>,
}

/// How a condemned sharded run was recovered (see [`MpiRun::recovery`]).
///
/// Under checkpoint rollback (the default) the condemned attempt aborts at
/// the condemnation barrier and a single serial engine replays the job,
/// re-certifying each recorded window checkpoint against the live world
/// hash as it passes — the serial bytes are
/// authoritative either way (a hash mismatch only stops the certification
/// count; it cannot change results). Under the legacy wind-down path
/// ([`set_default_condemn_winddown`]) the condemned schedule is simulated
/// to its wound-down end and the job rerun from scratch, with
/// `windows_recorded == windows_verified == 0`.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryStats {
    /// Why the exactness guard condemned the windowed schedule.
    pub reason: CondemnReason,
    /// 1-based window at which the run was condemned (the first unverified
    /// window), or the final window count on the legacy wind-down path.
    pub condemned_window: u64,
    /// Verified window checkpoints the condemned attempt had recorded.
    pub windows_recorded: u64,
    /// Recovery-replay barriers whose world hash matched the recorded
    /// checkpoint (equal to `windows_recorded` unless verification failed
    /// closed part-way).
    pub windows_verified: u64,
    /// Engine events the condemned attempt dispatched before it stopped.
    pub condemned_events: u64,
    /// Host wall-clock time of the condemned sharded attempt.
    pub condemned_wall: std::time::Duration,
    /// Host wall-clock time of the serial recovery (replay + tail).
    pub recovery_wall: std::time::Duration,
}

impl<R> MpiRun<R> {
    /// Average fraction of wall-clock the ranks spent in modelled compute.
    pub fn compute_utilisation(&self) -> f64 {
        if self.elapsed == SimTime::ZERO || self.compute_busy.is_empty() {
            return 0.0;
        }
        let total: f64 = self.compute_busy.iter().map(|t| t.as_secs_f64()).sum();
        total / (self.compute_busy.len() as f64 * self.elapsed.as_secs_f64())
    }
}

/// Run an MPI job: every rank executes `body` on its own simulated process.
///
/// `body` is called once per rank with that rank's [`Rank`] handle and must
/// return the future that *is* the rank program — typically an
/// `async move` block:
///
/// ```
/// use simmpi::{run_mpi, JobSpec};
/// use soc_arch::Platform;
///
/// let spec = JobSpec::new(Platform::tegra2(), 4);
/// let run = run_mpi(spec, |mut r| async move {
///     r.barrier().await;
///     r.rank()
/// })
/// .unwrap();
/// assert_eq!(run.results, vec![0, 1, 2, 3]);
/// ```
///
/// Ranks are event-driven des processes: the whole job, at any rank count,
/// executes on the calling thread.
///
/// Communication costs come from the job's protocol/topology models; compute
/// costs from [`Rank::compute`]. The run is bit-deterministic, including
/// under fault injection: identical `(spec, fault_plan)` pairs produce
/// identical virtual times, results, and failure reports.
///
/// # Errors
///
/// * [`MpiFault::InvalidSpec`] — the spec failed validation; nothing ran.
/// * [`MpiFault::RankDied`] — a node crash from the fault plan killed a
///   participating rank, at the crash's virtual time.
/// * [`MpiFault::Timeout`] — retransmissions were exhausted on a lossy link,
///   or a receive timed out under the retry policy.
/// * [`MpiFault::Engine`] — simulator-level failure (deadlock, rank panic)
///   unrelated to injected faults.
pub fn run_mpi<R, F, Fut>(spec: JobSpec, body: F) -> Result<MpiRun<R>, MpiFault>
where
    R: Send + 'static,
    F: Fn(Rank) -> Fut,
    Fut: Future<Output = R> + Send + 'static,
{
    spec.validate().map_err(MpiFault::InvalidSpec)?;
    // All process-global defaults are snapshotted here, before any shard
    // thread exists: a concurrent `set_default_*` cannot affect this job.
    let requested_shards = spec.shards.unwrap_or_else(default_shards);
    let budget = spec.event_budget.or_else(default_event_budget);
    let tracer = default_tracer();
    let world = Arc::new(World::new(spec));
    if requested_shards > 1 && tracer.is_none() {
        if let Some((partition, lookahead)) = shard_plan(&world, requested_shards) {
            return run_mpi_sharded(world, budget, partition, lookahead, body);
        }
    }
    run_mpi_serial(world, budget, tracer, body)
}

/// The single-engine path (and the fallback for shard-ineligible jobs).
/// `tracer` is the caller's snapshot of the process-wide default (a mid-run
/// `set_default_tracer` must not affect a job that already started).
fn run_mpi_serial<R, F, Fut>(
    world: Arc<World>,
    budget: Option<u64>,
    tracer: Option<Arc<dyn Tracer>>,
    body: F,
) -> Result<MpiRun<R>, MpiFault>
where
    R: Send + 'static,
    F: Fn(Rank) -> Fut,
    Fut: Future<Output = R> + Send + 'static,
{
    let nranks = world.spec.ranks;
    let results: Arc<Mutex<Vec<Option<R>>>> =
        Arc::new(Mutex::new((0..nranks).map(|_| None).collect()));

    let mut engine = Engine::new().with_event_budget(budget);
    // Under a model-checking run (see `des::mc`), wire the thread's
    // controller into this engine: it arbitrates delivery orderings and
    // message drops, and hashes the world's message state for
    // deduplication. The controller's tracer (used for counterexample
    // replays) takes precedence over the process-global default.
    let mc = des::mc::current();
    if let Some(ctl) = &mc {
        engine.set_mc(Arc::clone(ctl));
        let world_for_probe = Arc::clone(&world);
        ctl.set_state_probe(move |now| world_for_probe.mc_state_hash(now));
    }
    if let Some(tracer) = mc.as_ref().and_then(|c| c.tracer()).or(tracer) {
        engine.set_tracer(tracer);
    }
    spawn_ranks(&mut engine, &world, &results, &body);
    let report = match engine.run() {
        Ok(report) => report,
        Err(e) => {
            // A rank that died on purpose recorded why before unwinding.
            let recorded = world.state.lock().fault.take();
            return Err(recorded.unwrap_or(MpiFault::Engine(e)));
        }
    };
    collect_run(&world, results, report.end_time, report.events, 1)
}

/// Spawn every rank of `world` as an event-driven process on one engine
/// (the serial and recovery paths; the sharded path spreads ranks across
/// its engines inline).
fn spawn_ranks<R, F, Fut>(
    engine: &mut Engine,
    world: &Arc<World>,
    results: &Arc<Mutex<Vec<Option<R>>>>,
    body: &F,
) where
    R: Send + 'static,
    F: Fn(Rank) -> Fut,
    Fut: Future<Output = R> + Send + 'static,
{
    for r in 0..world.spec.ranks {
        let pid = engine.spawn_process(format!("rank{r}"), |ctx| {
            let world_for_rank = Arc::clone(world);
            let results = Arc::clone(results);
            let node = world_for_rank.spec.node_of(r);
            let plan = &world_for_rank.spec.fault_plan;
            let crash_at = plan.crash_time(node);
            let flips: Vec<SimTime> = plan.bit_flips(node).collect();
            let rank = Rank {
                ctx,
                rank: r,
                world: world_for_rank,
                node,
                crash_at,
                flips,
                flips_seen: 0,
                shard: None,
            };
            let fut = body(rank);
            async move {
                let out = fut.await;
                results.lock()[r as usize] = Some(out);
            }
        });
        world.state.lock().ranks[r as usize].pid = Some(pid);
    }
}

/// Whether (and how) a job can shard: the partition of its used nodes and
/// the conservative window lookahead. `None` falls back to the serial
/// engine. Eligibility requires the event network model, a clean fault
/// plan, identity placement with one rank per node, no model-checking
/// controller (it observes a global event order that windowed execution
/// does not reproduce; the caller already ruled out a default tracer for
/// the same reason), and a partition whose intra-shard routes share no
/// links with another shard's (so in-window link reservations commute —
/// see `crate::shard`).
fn shard_plan(world: &World, requested: u32) -> Option<(Partition, SimTime)> {
    let spec = &world.spec;
    let eligible = world.net_model == NetModel::Event
        && spec.fault_plan.is_empty()
        && spec.node_map.is_none()
        && spec.ranks_per_node == 1
        && des::mc::current().is_none();
    if !eligible {
        return None;
    }
    // One rank per node with identity placement: used nodes == ranks.
    let used_nodes = spec.ranks;
    let partition = Partition::contiguous(used_nodes, requested.min(used_nodes))?;
    let st = world.state.lock();
    if !st.net.partition_isolates_links(&partition) {
        return None;
    }
    let lookahead = st.net.min_cross_partition_latency(&partition);
    drop(st);
    (lookahead > SimTime::ZERO).then_some((partition, lookahead))
}

/// The sharded path: ranks partitioned across N engines advancing in
/// conservative time windows (`des::ShardedEngine`), cross-shard messages
/// replayed at window barriers (`crate::shard`). Byte-identical to
/// [`run_mpi_serial`] by construction; `tests/determinism.rs` pins it.
fn run_mpi_sharded<R, F, Fut>(
    world: Arc<World>,
    budget: Option<u64>,
    partition: Partition,
    lookahead: SimTime,
    body: F,
) -> Result<MpiRun<R>, MpiFault>
where
    R: Send + 'static,
    F: Fn(Rank) -> Fut,
    Fut: Future<Output = R> + Send + 'static,
{
    let nranks = world.spec.ranks;
    let nshards = partition.shards() as usize;
    let shard_of_rank: Vec<u16> =
        (0..nranks).map(|r| partition.shard_of(world.spec.node_of(r)) as u16).collect();
    let shard_ctx = Arc::new(ShardCtx::new(shard_of_rank, nshards));
    let results: Arc<Mutex<Vec<Option<R>>>> =
        Arc::new(Mutex::new((0..nranks).map(|_| None).collect()));
    // Arm the link reservation-order guard: if the windowed schedule ever
    // touches a link out of the serial engine's order (tightly-cascading
    // cross-boundary traffic can — see `crate::shard`), or a wildcard
    // receive observes mailbox arrival order, the guard trips and the whole
    // job is redone on one engine below. `--shards` is a wall-clock lever,
    // never a semantics lever.
    world.state.lock().net.guard_reservations();
    // Each shard carries the full event budget: the watchdog exists to
    // bound runaway event chains, and any single shard spinning alone hits
    // it at the same count the serial engine would.
    let mut engines: Vec<Engine> =
        (0..nshards).map(|_| Engine::new().with_event_budget(budget)).collect();
    // All rank futures are created here, on the caller's thread, before the
    // engines move to their worker threads — `body` needs no `Sync` bound.
    for r in 0..nranks {
        let shard = shard_ctx.shard_of_rank[r as usize];
        let pid = engines[shard as usize].spawn_process(format!("rank{r}"), |ctx| {
            let world_for_rank = Arc::clone(&world);
            let results = Arc::clone(&results);
            let node = world_for_rank.spec.node_of(r);
            let plan = &world_for_rank.spec.fault_plan;
            let crash_at = plan.crash_time(node);
            let flips: Vec<SimTime> = plan.bit_flips(node).collect();
            let rank = Rank {
                ctx,
                rank: r,
                world: world_for_rank,
                node,
                crash_at,
                flips,
                flips_seen: 0,
                shard: Some((shard, Arc::clone(&shard_ctx))),
            };
            let fut = body(rank);
            async move {
                let out = fut.await;
                results.lock()[r as usize] = Some(out);
            }
        });
        world.state.lock().ranks[r as usize].pid = Some(pid);
    }
    // Snapshot the checkpoint/recovery defaults (same once-at-start rule as
    // every other process-global default) and resolve the job's on-disk
    // checkpoint file: named by the spec fingerprint, so concurrent sweeps
    // of distinct cells sharing a directory never collide, and a stale file
    // from a different job can never certify this one's replay.
    let ckpt_every = world.spec.ckpt_every.or_else(default_ckpt_every);
    let ckpt_dir = world.spec.ckpt_dir.clone().or_else(default_ckpt_dir);
    let winddown = default_condemn_winddown();
    let condemn_at = world.spec.condemn_at_window;
    let fingerprint = spec_fingerprint(&world.spec);
    let path = ckpt_dir.map(|dir| dir.join(format!("job_{fingerprint:016x}.ckpt")));
    let resume = path.as_deref().and_then(des::JobCkpt::load);
    let policy = des::CkptPolicy { every: ckpt_every.unwrap_or(0), path, fingerprint, resume };

    let world_for_exchange = Arc::clone(&world);
    let ctx_for_exchange = Arc::clone(&shard_ctx);
    let world_for_hash = Arc::clone(&world);
    let attempt_start = std::time::Instant::now();
    let run = des::ShardedEngine::new(engines, lookahead).with_ckpt(policy).run(
        move |wakers, window| {
            if condemn_at == Some(window) {
                // Deterministic condemnation for tests and the recovery
                // ablation: trip the guard at this barrier exactly where an
                // organic trip would be observed.
                world_for_exchange.state.lock().net.guard_trip(CondemnReason::Forced);
            }
            apply_cross_packets(&world_for_exchange, &ctx_for_exchange, wakers, winddown)
        },
        move || world_for_hash.ckpt_state_hash(),
    );
    let attempt_wall = attempt_start.elapsed();
    CKPTS_WRITTEN.fetch_add(run.ckpts_written, Ordering::Relaxed);
    if run.resume_verified {
        RESUME_VERIFIED_RUNS.fetch_add(1, Ordering::Relaxed);
    }
    if run.abort.is_some() || world.state.lock().net.guard_tripped() {
        // The guard condemned the windowed schedule. Under rollback the
        // attempt aborted at the condemnation barrier with its verified
        // checkpoint log intact; under the legacy wind-down it limped to a
        // stalled or wound-down end and recorded nothing. Either way the
        // attempt's bytes are discarded and one engine recovers the job
        // under the same snapshotted defaults (the spec pins the world's
        // net model; eligibility already required no tracer).
        let reason = world
            .state
            .lock()
            .net
            .guard_condemn_reason()
            .expect("condemned run lost its guard reason");
        let condemned_window = run.abort.as_ref().map_or(run.windows, |a| a.window);
        let condemned_events = run.abort.as_ref().map_or(run.report.events, |a| a.events);
        CONDEMNED_RUNS.fetch_add(1, Ordering::Relaxed);
        CONDEMNED_EVENTS.fetch_add(condemned_events, Ordering::Relaxed);
        CONDEMNED_WALL_US.fetch_add(attempt_wall.as_micros() as u64, Ordering::Relaxed);
        // The legacy path keeps winding the corrupted schedule down past the
        // trip, so its later checkpoints hash dropped-packet state — discard
        // the whole log and rerun plain (that full cost is what it ablates).
        let ckpts = if winddown { des::CkptLog::new() } else { run.ckpts };
        let stats = RecoveryStats {
            reason,
            condemned_window,
            windows_recorded: ckpts.len() as u64,
            windows_verified: 0,
            condemned_events,
            condemned_wall: attempt_wall,
            recovery_wall: std::time::Duration::ZERO,
        };
        return run_mpi_recover(&world, budget, ckpts, stats, body);
    }
    let report = match run.result {
        Ok(()) => run.report,
        Err(e) => {
            // A rank that died on purpose recorded why before unwinding.
            let recorded = world.state.lock().fault.take();
            return Err(recorded.unwrap_or(MpiFault::Engine(e)));
        }
    };
    collect_run(&world, results, report.end_time, report.events, nshards as u32)
}

/// Fingerprint of everything about a [`JobSpec`] that shapes its simulated
/// bytes. Stamped into on-disk checkpoints ([`des::JobCkpt`]) and used to
/// name the checkpoint file; the checkpoint/recovery knobs themselves
/// (`ckpt_every`, `ckpt_dir`, `condemn_at_window`) are cleared first — they
/// steer persistence and condemnation, never results, so changing them must
/// not orphan a resumable checkpoint.
fn spec_fingerprint(spec: &JobSpec) -> u64 {
    let mut canon = spec.clone();
    canon.ckpt_every = None;
    canon.ckpt_dir = None;
    canon.condemn_at_window = None;
    let repr = format!("{canon:?}");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in repr.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serial recovery of a condemned sharded run.
///
/// Pinned rank futures cannot be serialised, so deterministic re-execution
/// *is* the restoration mechanism: one engine replays the job from the
/// start, re-running each recorded window (`Engine::run_window` to the
/// checkpoint's end time) and comparing the live world hash against the
/// checkpoint's — every match re-certifies that the condemned attempt's
/// prefix was byte-identical to the serial schedule, so condemnation cost
/// only the unverified suffix plus this replay. Verification fails closed:
/// a mismatch stops the certification count but cannot change results —
/// the serial bytes are authoritative throughout.
fn run_mpi_recover<R, F, Fut>(
    condemned: &World,
    budget: Option<u64>,
    ckpts: des::CkptLog,
    mut stats: RecoveryStats,
    body: F,
) -> Result<MpiRun<R>, MpiFault>
where
    R: Send + 'static,
    F: Fn(Rank) -> Fut,
    Fut: Future<Output = R> + Send + 'static,
{
    let recovery_start = std::time::Instant::now();
    let mut spec = condemned.spec.clone();
    spec.net_model = Some(condemned.net_model);
    let world = Arc::new(World::new(spec));
    let results: Arc<Mutex<Vec<Option<R>>>> =
        Arc::new(Mutex::new((0..world.spec.ranks).map(|_| None).collect()));
    let mut engine = Engine::new().with_event_budget(budget);
    spawn_ranks(&mut engine, &world, &results, &body);
    let mut verified = 0u64;
    let windowed: Result<(), des::SimError> = (|| {
        for ck in ckpts.iter() {
            engine.run_window(ck.end)?;
            if world.ckpt_state_hash() == ck.world_hash {
                verified += 1;
            } else {
                // Fail closed: this and every later checkpoint stays
                // uncertified, and the replay simply continues as a plain
                // serial run.
                break;
            }
        }
        Ok(())
    })();
    let report = match windowed.and_then(|()| engine.run()) {
        Ok(report) => report,
        Err(e) => {
            let recorded = world.state.lock().fault.take();
            return Err(recorded.unwrap_or_else(|| {
                MpiFault::Engine(annotate_recovery_error(e, verified, &ckpts))
            }));
        }
    };
    stats.windows_verified = verified;
    stats.recovery_wall = recovery_start.elapsed();
    RECOVERY_WINDOWS_RECORDED.fetch_add(stats.windows_recorded, Ordering::Relaxed);
    RECOVERY_WINDOWS_VERIFIED.fetch_add(verified, Ordering::Relaxed);
    RECOVERY_WALL_US.fetch_add(stats.recovery_wall.as_micros() as u64, Ordering::Relaxed);
    let mut out = collect_run(&world, results, report.end_time, report.events, 1)?;
    out.recovery = Some(stats);
    Ok(out)
}

/// Tag a recovery-replay failure's process diagnostics with the replay
/// context (how many checkpoints were re-certified out of how many
/// recorded), mirroring `des`'s shard-aware deadlock annotations.
fn annotate_recovery_error(e: des::SimError, verified: u64, ckpts: &des::CkptLog) -> des::SimError {
    let tag = |names: Vec<String>| {
        names
            .into_iter()
            .map(|n| format!("{n} [recovery replay, verified ckpt {verified} of {}]", ckpts.len()))
            .collect()
    };
    match e {
        des::SimError::Deadlock { at, parked } => {
            des::SimError::Deadlock { at, parked: tag(parked) }
        }
        des::SimError::EventBudgetExhausted { at, events, budget, parked } => {
            des::SimError::EventBudgetExhausted { at, events, budget, parked: tag(parked) }
        }
        other => other,
    }
}

/// Collect a finished run's per-rank tallies and results into an [`MpiRun`].
fn collect_run<R>(
    world: &World,
    results: Arc<Mutex<Vec<Option<R>>>>,
    elapsed: SimTime,
    events: u64,
    shards: u32,
) -> Result<MpiRun<R>, MpiFault> {
    let mut st = world.state.lock();
    let compute_busy = st.ranks.iter().map(|r| r.compute_busy).collect();
    let comm_busy = st.ranks.iter().map(|r| r.comm_busy).collect();
    let net = std::mem::take(&mut st.stats);
    drop(st);
    let results = Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("results still shared"))
        .into_inner()
        .into_iter()
        .map(|o| o.expect("rank did not produce a result"))
        .collect();
    Ok(MpiRun { elapsed, results, compute_busy, comm_busy, net, events, shards, recovery: None })
}

impl Rank {
    /// This rank's id.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> u32 {
        self.world.spec.ranks
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// The job specification.
    pub fn spec(&self) -> &JobSpec {
        &self.world.spec
    }

    /// Whether the engine this rank runs on has a tracer installed. Guard
    /// any work done *only* to build trace events behind this, so untraced
    /// runs pay nothing.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.ctx.tracing()
    }

    /// Open a named phase span on this rank (traced runs only; a no-op
    /// otherwise). Spans on one rank must nest strictly — close them in
    /// reverse order with [`Rank::phase_end`]. Built-in primitives emit their
    /// own spans (`compute`, `send`, `recv`, each collective by name), which
    /// nest inside application phases; `trace2flame` folds the nesting into
    /// flamegraph stacks. Dotted names (`"hpl.panel"`) read well there.
    pub fn phase_begin(&self, name: &str) {
        if self.ctx.tracing() {
            self.ctx.emit_trace(TraceEvent::SpanBegin { rank: self.rank, name: name.to_string() });
        }
    }

    /// Close the innermost open phase span; `name` must match the
    /// [`Rank::phase_begin`] it pairs with.
    pub fn phase_end(&self, name: &str) {
        if self.ctx.tracing() {
            self.ctx.emit_trace(TraceEvent::SpanEnd { rank: self.rank, name: name.to_string() });
        }
    }

    /// Emit a message/fault trace event (traced runs only). Internal helper
    /// for the messaging layer; applications use [`Rank::phase_begin`].
    #[inline]
    pub(crate) fn emit_trace(&self, event: TraceEvent) {
        self.ctx.emit_trace(event);
    }

    /// Model the execution of `work` on this rank's share of the node
    /// (advances virtual time by the roofline estimate).
    pub async fn compute(&mut self, work: &WorkProfile) {
        let spec = &self.world.spec;
        // Memoized: identical work profiles recur across ranks, iterations,
        // and (in the sweep harness) across scenario cells of the same job.
        let t = soc_arch::cached_kernel_time_fp(
            self.world.soc_fp,
            &spec.platform.soc,
            spec.freq_ghz,
            spec.cores_per_rank(),
            work,
        );
        self.compute_secs(t.total_s).await;
    }

    /// Model `seconds` of computation. If the node crashes mid-computation,
    /// the rank dies at exactly the crash instant.
    pub async fn compute_secs(&mut self, seconds: f64) {
        self.phase_begin("compute");
        let dt = SimTime::from_secs_f64(seconds);
        let end = self.ctx.now() + dt;
        if let Some(crash) = self.crash_at {
            if crash <= end {
                let done = crash - self.ctx.now();
                self.ctx.advance_to(crash).await;
                self.world.state.lock().ranks[self.rank as usize].compute_busy += done;
                self.die_crashed();
            }
        }
        self.ctx.advance(dt).await;
        self.world.state.lock().ranks[self.rank as usize].compute_busy += dt;
        self.phase_end("compute");
    }

    /// Consume the earliest scheduled DRAM bit-flip on this rank's node that
    /// has already struck (`at <= now`). Applications model silent data
    /// corruption by polling this between phases and corrupting their own
    /// state when it fires.
    pub fn poll_bit_flip(&mut self) -> Option<SimTime> {
        let next = *self.flips.get(self.flips_seen)?;
        if next <= self.ctx.now() {
            self.flips_seen += 1;
            self.emit_trace(TraceEvent::Fault { kind: "bit_flip", node: self.node });
            Some(next)
        } else {
            None
        }
    }

    fn tally_comm(&self, dt: SimTime) {
        self.world.state.lock().ranks[self.rank as usize].comm_busy += dt;
    }

    /// Whether `peer` runs on a different engine shard (always false on a
    /// serial run).
    fn cross_shard(&self, peer: u32) -> bool {
        self.shard.as_ref().is_some_and(|(me, ctx)| ctx.shard_of_rank[peer as usize] != *me)
    }

    /// Buffer a cross-shard packet in this rank's shard's outbox for the
    /// next window barrier.
    fn push_packet(&self, packet: Packet) {
        let (me, ctx) = self.shard.as_ref().expect("cross-shard packet on a serial run");
        ctx.push(*me, packet);
    }

    /// Stamp this rank's shard as the source stream of the link
    /// reservations the caller is about to make (see
    /// `Network::guard_reservations`). No-op on a serial run, where no
    /// guard is armed.
    fn stamp_guard_source(&self, st: &mut crate::world::WorldState) {
        if let Some((me, _)) = &self.shard {
            st.net.guard_source(*me as u32);
        }
    }

    /// Record `fault` as the run's outcome (first one wins) and unwind this
    /// rank's process. The engine aborts the run; `run_mpi` reports the
    /// recorded fault. Must not be called with the world lock held.
    fn die(&self, fault: MpiFault) -> ! {
        {
            let mut st = self.world.state.lock();
            if st.fault.is_none() {
                st.fault = Some(fault);
            }
        }
        // resume_unwind skips the panic hook: the failure is reported
        // through MpiFault, not stderr. The unwind crosses the rank's
        // future's `poll` and is caught by the engine.
        std::panic::resume_unwind(Box::new("simmpi rank fault (see MpiFault)"));
    }

    fn die_crashed(&self) -> ! {
        let at = self.crash_at.expect("die_crashed without a crash time");
        self.emit_trace(TraceEvent::Fault { kind: "node_crash", node: self.node });
        self.die(MpiFault::RankDied { rank: self.rank, node: self.node, at });
    }

    /// Die if this rank's node has already crashed.
    fn check_crashed(&self) {
        if self.crash_at.is_some_and(|c| c <= self.ctx.now()) {
            self.die_crashed();
        }
    }

    /// Advance to `at`, dying at the crash instant if it lands first.
    async fn advance_to_or_die(&self, at: SimTime) {
        match self.crash_at {
            Some(crash) if crash <= at => {
                self.ctx.advance_to(crash).await;
                self.die_crashed();
            }
            _ => self.ctx.advance_to(at).await,
        }
    }

    /// Advance by `dt` of protocol CPU time, dying at the crash instant if
    /// it lands inside the interval.
    async fn advance_comm_or_die(&self, dt: SimTime) {
        let end = self.ctx.now() + dt;
        match self.crash_at {
            Some(crash) if crash <= end => {
                self.ctx.advance_to(crash).await;
                self.die_crashed();
            }
            _ => {
                self.ctx.advance(dt).await;
                self.tally_comm(dt);
            }
        }
    }

    /// Park awaiting a peer, bounded by the crash instant and an optional
    /// absolute timeout. On timeout the rank dies with the appropriate
    /// fault; on a peer wake it simply returns.
    async fn park_or_die(&self, timeout_at: Option<SimTime>, peer: Option<u32>) {
        let deadline = match (self.crash_at, timeout_at) {
            (None, None) => {
                self.ctx.park().await;
                return;
            }
            (Some(c), None) => c,
            (None, Some(t)) => t,
            (Some(c), Some(t)) => c.min(t),
        };
        if !self.ctx.park_until(deadline).await {
            self.check_crashed();
            self.die(MpiFault::Timeout { rank: self.rank, peer, at: self.ctx.now(), attempts: 0 });
        }
    }

    /// Deadline for the current receive, from the retry policy.
    fn recv_deadline(&self) -> Option<SimTime> {
        self.world.spec.retry.recv_timeout.map(|t| self.ctx.now() + t)
    }

    /// Under model checking, fold a cross-rank delivery into the current
    /// execution segment's footprint so the commute reducer knows this step
    /// touched the destination rank and both link endpoints.
    fn mc_touch_delivery(&self, dst: u32, src_node: u32, dst_node: u32) {
        if let Some(ctl) = des::mc::current() {
            ctl.touch(
                des::mc::pid_bit(dst as usize)
                    | des::mc::node_bit(src_node)
                    | des::mc::node_bit(dst_node),
            );
        }
    }

    /// Blocking send of `msg` to rank `dst` with `tag`.
    ///
    /// Eager messages return once the payload has been injected; rendezvous
    /// messages (Open-MX above 32 KiB) block until the receiver has cleared
    /// the transfer, like `MPI_Send` beyond the eager threshold.
    pub async fn send(&mut self, dst: u32, tag: u32, msg: Msg) {
        assert!(dst < self.size(), "send to invalid rank {dst}");
        assert!(dst != self.rank, "self-sends are not supported; restructure the algorithm");
        self.check_crashed();
        self.phase_begin("send");
        let world = Arc::clone(&self.world);
        let proto = world.spec.proto;
        let o_s = proto.send_overhead(&world.ep);
        self.advance_comm_or_die(o_s).await;

        let bytes = msg.bytes;
        let src_node = world.spec.node_of(self.rank);
        let dst_node = world.spec.node_of(dst);
        // A cross-shard destination's mailbox, engine, and links cannot be
        // touched mid-window; the interaction is captured as a packet and
        // replayed at the window barrier instead (see `crate::shard`). The
        // shard planner guarantees no loss windows, tracer, or
        // model-checking controller on this path.
        let cross = self.cross_shard(dst);

        if proto.needs_rendezvous(bytes) {
            if cross {
                self.push_packet(Packet::Rts {
                    depart: self.ctx.now(),
                    src: self.rank,
                    dst,
                    tag,
                    msg,
                    sender_pid: self.ctx.pid(),
                });
                // Wait until the receiver completes the transfer; the
                // barrier applier delivers its wake.
                self.park_or_die(self.recv_deadline(), Some(dst)).await;
                self.phase_end("send");
                return;
            }
            // RTS: a minimal frame to the receiver.
            let wake = {
                let mut st = world.state.lock();
                self.stamp_guard_source(&mut st);
                let depart = self.ctx.now();
                let rts_arrival = st.net.transmit(depart, src_node, dst_node, 128);
                st.stats.messages += 1;
                st.stats.payload_bytes += bytes;
                let my_pid = st.ranks[self.rank as usize].pid.unwrap();
                let dst_state = &mut st.ranks[dst as usize];
                dst_state.mailbox.push_back(InMsg {
                    src: self.rank,
                    tag,
                    msg,
                    delivery: Delivery::Rendezvous { sender_pid: my_pid, rts_arrival },
                });
                match dst_state.pending {
                    Some(f) if matches(&f, self.rank, tag) => {
                        dst_state.pending = None;
                        Some((dst_state.pid.unwrap(), self.ctx.now().max(rts_arrival)))
                    }
                    _ => None,
                }
            };
            self.emit_trace(TraceEvent::MsgEnqueue { src: self.rank, dst, tag, bytes });
            self.mc_touch_delivery(dst, src_node, dst_node);
            if let Some((pid, at)) = wake {
                self.ctx.wake_at(pid, at);
            }
            // Wait until the receiver completes the transfer and wakes us
            // (bounded by our own crash and the per-message timeout).
            self.park_or_die(self.recv_deadline(), Some(dst)).await;
            self.phase_end("send");
            return;
        }

        // Eager path: get the payload through any active loss window first.
        // A dropped frame costs an exponential backoff and a retransmission;
        // exhausting the budget fails the run.
        let retry = world.spec.retry;
        let mc = des::mc::current();
        let mut attempts = 0u32;
        loop {
            let depart = self.ctx.now();
            let dropped = {
                let mut st = world.state.lock();
                let loss = st.net.loss_probability(src_node, dst_node, depart);
                // Inside a loss window a model-checking controller overrides
                // the seeded draw with an adversarial verdict; the RNG is
                // not advanced, and outside MC the draw order is untouched.
                let dropped = match &mc {
                    Some(ctl) => loss > 0.0 && ctl.decide_drop(),
                    None => loss > 0.0 && st.rng.next_f64() < loss,
                };
                if dropped {
                    st.stats.retransmits += 1;
                }
                dropped
            };
            if !dropped {
                break;
            }
            attempts += 1;
            self.emit_trace(TraceEvent::MsgDrop { src: self.rank, dst, attempt: attempts });
            if attempts > retry.max_retries {
                self.die(MpiFault::Timeout {
                    rank: self.rank,
                    peer: Some(dst),
                    at: depart,
                    attempts,
                });
            }
            self.advance_comm_or_die(backoff(retry.retrans_base, attempts)).await;
        }

        if cross {
            // Wire reservation, enqueue, and pending-receive wake are
            // deferred to the barrier; the sender's own injection cost is
            // purely local and advances inline, exactly as below.
            self.push_packet(Packet::Eager {
                depart: self.ctx.now(),
                src: self.rank,
                dst,
                tag,
                msg,
            });
            let injection = SimTime::from_secs_f64(bytes as f64 / world.cpu_stage_rate());
            self.ctx.advance(injection).await;
            self.tally_comm(injection);
            self.phase_end("send");
            return;
        }

        let injection;
        let flow_started;
        {
            let mut st = world.state.lock();
            self.stamp_guard_source(&mut st);
            let depart = self.ctx.now();
            let wire = world.framed(bytes);
            let link_bw = st.net.link_bw_bytes;
            st.stats.messages += 1;
            st.stats.payload_bytes += bytes;
            // Under the flow model a cross-node payload rides a fluid flow:
            // its arrival time emerges from fair sharing as the receiver
            // polls, so the receiver is woken immediately to start polling.
            // Same-node transfers never cross a link and keep the event
            // path's (reservation-free) timing under both models.
            let use_flow = world.net_model == NetModel::Flow && src_node != dst_node;
            let delivery = if use_flow {
                let extra = st.net.path_latency(src_node, dst_node)
                    + world.endpoint_extra_serial(bytes, link_bw);
                let id = st
                    .flows
                    .as_mut()
                    .expect("flow model without flow net")
                    .start(depart, depart, src_node, dst_node, wire);
                Delivery::Flow { id, extra }
            } else {
                let arrival = st.net.transmit(depart, src_node, dst_node, wire)
                    + world.endpoint_extra_serial(bytes, link_bw);
                Delivery::Eager { available_at: arrival }
            };
            let wake_floor = match delivery {
                Delivery::Eager { available_at } => available_at,
                _ => depart,
            };
            let dst_state = &mut st.ranks[dst as usize];
            dst_state.mailbox.push_back(InMsg { src: self.rank, tag, msg, delivery });
            let wake = if let Some(f) = dst_state.pending {
                if matches(&f, self.rank, tag) {
                    dst_state.pending = None;
                    Some((dst_state.pid.unwrap(), self.ctx.now().max(wake_floor)))
                } else {
                    None
                }
            } else {
                None
            };
            drop(st);
            self.emit_trace(TraceEvent::MsgEnqueue { src: self.rank, dst, tag, bytes });
            flow_started = use_flow;
            self.mc_touch_delivery(dst, src_node, dst_node);
            if let Some((pid, at)) = wake {
                self.ctx.wake_at(pid, at);
            }
            injection = SimTime::from_secs_f64(bytes as f64 / world.cpu_stage_rate());
        }
        if flow_started && self.tracing() {
            self.emit_trace(TraceEvent::FlowStart { src: self.rank, dst, bytes });
        }
        // The sender's CPU is busy injecting the payload.
        self.ctx.advance(injection).await;
        self.tally_comm(injection);
        self.phase_end("send");
    }

    /// Blocking receive matching exactly `(src, tag)`.
    pub async fn recv(&mut self, src: u32, tag: u32) -> Msg {
        self.recv_filtered(Some(src), Some(tag)).await.2
    }

    /// Blocking receive from any source with a given tag. Returns
    /// `(src, tag, msg)`.
    pub async fn recv_any(&mut self, tag: u32) -> (u32, u32, Msg) {
        self.recv_filtered(None, Some(tag)).await
    }

    /// Blocking receive with optional source/tag filters.
    pub async fn recv_filtered(&mut self, src: Option<u32>, tag: Option<u32>) -> (u32, u32, Msg) {
        self.check_crashed();
        self.phase_begin("recv");
        let world = Arc::clone(&self.world);
        let proto = world.spec.proto;
        // A wildcard receive matches on mailbox arrival order, which a
        // windowed run reorders around barriers; the link guard cannot see
        // that dependence, so condemn the schedule explicitly (the job is
        // then redone serially — see `run_mpi_sharded`).
        if self.shard.is_some() && (src.is_none() || tag.is_none()) {
            world.state.lock().net.guard_trip(netsim::CondemnReason::WildcardRecv);
        }
        let filter = (src, tag);
        // The timeout (when the retry policy sets one) is absolute from the
        // moment the receive was posted, not re-armed per park.
        let timeout_at = self.recv_deadline();
        loop {
            let found = self.scan_mailbox(&filter);
            match found {
                Scan::Deliver(m) => match m.delivery {
                    Delivery::Eager { .. } | Delivery::Flow { .. } => {
                        if matches!(m.delivery, Delivery::Flow { .. }) && self.tracing() {
                            self.emit_trace(TraceEvent::FlowFinish {
                                src: m.src,
                                dst: self.rank,
                                bytes: m.msg.bytes,
                            });
                        }
                        let o_r = proto.recv_overhead(&world.ep);
                        self.advance_comm_or_die(o_r).await;
                        self.emit_trace(TraceEvent::MsgDeliver {
                            src: m.src,
                            dst: self.rank,
                            tag: m.tag,
                            bytes: m.msg.bytes,
                        });
                        self.phase_end("recv");
                        return (m.src, m.tag, m.msg);
                    }
                    Delivery::Rendezvous { sender_pid, rts_arrival } => {
                        let out = self
                            .complete_rendezvous(m.src, m.tag, m.msg, sender_pid, rts_arrival)
                            .await;
                        self.phase_end("recv");
                        return out;
                    }
                },
                Scan::WaitWire(at) => self.advance_to_or_die(at).await,
                Scan::WaitFlow(at, flows) => {
                    // Advance to the network's next flow transition, then
                    // re-poll: our flow's rate may have been re-shared.
                    self.advance_to_or_die(at).await;
                    if self.tracing() {
                        self.emit_trace(TraceEvent::FlowReshare { rank: self.rank, flows });
                    }
                }
                Scan::Park => {
                    // Park until a sender delivers a matching message, our
                    // node crashes, or the receive times out.
                    self.park_or_die(timeout_at, src).await;
                }
            }
        }
    }

    /// One mailbox scan under the world lock: find the first message matching
    /// `filter` and decide how the receive proceeds. Flow deliveries poll the
    /// fluid network here (settling it to `now`), which is why this returns
    /// [`Scan`] rather than awaiting in place — the lock must drop first.
    fn scan_mailbox(&self, filter: &crate::world::RecvFilter) -> Scan {
        let mut st = self.world.state.lock();
        let st = &mut *st;
        let now = self.ctx.now();
        let me_idx = self.rank as usize;
        st.ranks[me_idx].pending = None;
        let pos = st.ranks[me_idx].mailbox.iter().position(|m| matches(filter, m.src, m.tag));
        match pos {
            Some(idx) => match st.ranks[me_idx].mailbox[idx].delivery {
                Delivery::Eager { available_at } if available_at > now => {
                    // Wait for the wire, then re-scan.
                    Scan::WaitWire(available_at)
                }
                Delivery::Flow { id, extra } => {
                    let flows = st.flows.as_mut().expect("flow delivery without flow net");
                    match flows.poll(now, id) {
                        FlowStatus::Done { at } if at + extra <= now => {
                            flows.consume(id);
                            Scan::Deliver(st.ranks[me_idx].mailbox.remove(idx).unwrap())
                        }
                        // Last byte is through the network; endpoint latency
                        // and serialisation still have to play out.
                        FlowStatus::Done { at } => Scan::WaitWire(at + extra),
                        FlowStatus::InFlight { wake, flows } => Scan::WaitFlow(wake, flows as u64),
                    }
                }
                _ => Scan::Deliver(st.ranks[me_idx].mailbox.remove(idx).unwrap()),
            },
            None => {
                st.ranks[me_idx].pending = Some(*filter);
                Scan::Park
            }
        }
    }

    /// Whether the flow-mode all-to-all fast path applies: flow model, every
    /// payload eager-sized, one rank per node (every pair crosses the
    /// network), a lossless network (the batch skips per-message loss
    /// draws), and enough ranks for batching to matter.
    pub(crate) fn flow_alltoall_ok(&self, msgs: &[Msg]) -> bool {
        self.world.net_model == NetModel::Flow
            && self.size() >= 3
            && self.world.spec.ranks_per_node == 1
            && msgs.iter().all(|m| !self.world.spec.proto.needs_rendezvous(m.bytes))
            && !self.world.state.lock().net.has_loss_windows()
    }

    /// Sender half of the flow-mode all-to-all fast path: one batched
    /// send-overhead advance covering every peer, all flows started at a
    /// single departure instant under one lock, then one batched injection
    /// advance — O(1) engine events for the whole fan-out instead of O(P)
    /// per-message chains.
    pub(crate) async fn send_flows_batched(&mut self, tag: u32, outgoing: Vec<(u32, Msg)>) {
        self.check_crashed();
        let world = Arc::clone(&self.world);
        let proto = world.spec.proto;
        let n = outgoing.len() as u64;
        let o_s = proto.send_overhead(&world.ep);
        self.advance_comm_or_die(o_s * n).await;
        let src_node = world.spec.node_of(self.rank);
        let mut total_bytes = 0u64;
        let mut wakes: Vec<des::Pid> = Vec::new();
        let mut enqueued: Vec<(u32, u32, u64)> = Vec::with_capacity(outgoing.len());
        let depart = self.ctx.now();
        {
            let mut st = world.state.lock();
            let st = &mut *st;
            let link_bw = st.net.link_bw_bytes;
            for (dst, msg) in outgoing {
                let bytes = msg.bytes;
                total_bytes += bytes;
                let dst_node = world.spec.node_of(dst);
                let wire = world.framed(bytes);
                st.stats.messages += 1;
                st.stats.payload_bytes += bytes;
                let extra = st.net.path_latency(src_node, dst_node)
                    + world.endpoint_extra_serial(bytes, link_bw);
                let id = st
                    .flows
                    .as_mut()
                    .expect("flow model without flow net")
                    .start(depart, depart, src_node, dst_node, wire);
                let dst_state = &mut st.ranks[dst as usize];
                dst_state.mailbox.push_back(InMsg {
                    src: self.rank,
                    tag,
                    msg,
                    delivery: Delivery::Flow { id, extra },
                });
                if let Some(f) = dst_state.pending {
                    if matches(&f, self.rank, tag) {
                        dst_state.pending = None;
                        wakes.push(dst_state.pid.unwrap());
                    }
                }
                enqueued.push((dst, dst_node, bytes));
            }
        }
        if self.tracing() || des::mc::current().is_some() {
            for &(dst, dst_node, bytes) in &enqueued {
                if self.tracing() {
                    self.emit_trace(TraceEvent::MsgEnqueue { src: self.rank, dst, tag, bytes });
                    self.emit_trace(TraceEvent::FlowStart { src: self.rank, dst, bytes });
                }
                self.mc_touch_delivery(dst, src_node, dst_node);
            }
        }
        for pid in wakes {
            self.ctx.wake_at(pid, depart);
        }
        let injection = SimTime::from_secs_f64(total_bytes as f64 / world.cpu_stage_rate());
        self.ctx.advance(injection).await;
        self.tally_comm(injection);
    }

    /// Receiver half of the fast path: take the `(src, tag)` message off the
    /// wire *without* charging the per-message receive overhead — the caller
    /// batches all of them in one [`Rank::batch_recv_overhead`] advance.
    pub(crate) async fn recv_wire(&mut self, src: u32, tag: u32) -> Msg {
        self.check_crashed();
        let filter = (Some(src), Some(tag));
        let timeout_at = self.recv_deadline();
        loop {
            match self.scan_mailbox(&filter) {
                Scan::Deliver(m) => {
                    if self.tracing() {
                        if matches!(m.delivery, Delivery::Flow { .. }) {
                            self.emit_trace(TraceEvent::FlowFinish {
                                src: m.src,
                                dst: self.rank,
                                bytes: m.msg.bytes,
                            });
                        }
                        self.emit_trace(TraceEvent::MsgDeliver {
                            src: m.src,
                            dst: self.rank,
                            tag: m.tag,
                            bytes: m.msg.bytes,
                        });
                    }
                    return m.msg;
                }
                Scan::WaitWire(at) => self.advance_to_or_die(at).await,
                Scan::WaitFlow(at, flows) => {
                    self.advance_to_or_die(at).await;
                    if self.tracing() {
                        self.emit_trace(TraceEvent::FlowReshare { rank: self.rank, flows });
                    }
                }
                Scan::Park => self.park_or_die(timeout_at, Some(src)).await,
            }
        }
    }

    /// Fully batched receiver half of the fast path: drain every peer's
    /// `tag` message in whole-mailbox passes under one lock. Each pass takes
    /// everything that has arrived and computes one wake — the earliest
    /// arrival or flow transition across ALL still-missing messages — so a
    /// P-way fan-in costs O(flow transitions) lock round-trips instead of
    /// O(P). Used when tracing is off; traced runs go through
    /// [`Rank::recv_wire`] per peer, which emits the per-message flow events
    /// in their documented order.
    ///
    /// `out[src]` slots that are `Some` (own rank, already received) are
    /// skipped; every `None` slot is filled before returning.
    pub(crate) async fn recv_wire_all(&mut self, tag: u32, out: &mut [Option<Msg>]) {
        self.check_crashed();
        let world = Arc::clone(&self.world);
        let timeout_at = self.recv_deadline();
        let mut missing = out.iter().filter(|m| m.is_none()).count();
        while missing > 0 {
            enum Step {
                Wait(SimTime),
                Park,
            }
            let step = {
                let mut st = world.state.lock();
                let st = &mut *st;
                let now = self.ctx.now();
                let me_idx = self.rank as usize;
                st.ranks[me_idx].pending = None;
                let mut wake: Option<SimTime> = None;
                let mut i = 0;
                while i < st.ranks[me_idx].mailbox.len() {
                    let m = &st.ranks[me_idx].mailbox[i];
                    if m.tag != tag || out[m.src as usize].is_some() {
                        i += 1;
                        continue;
                    }
                    let delivery = m.delivery;
                    let arrival = match delivery {
                        Delivery::Eager { available_at } => {
                            (available_at > now).then_some(available_at)
                        }
                        Delivery::Flow { id, extra } => {
                            let flows = st.flows.as_mut().expect("flow delivery without flow net");
                            match flows.poll(now, id) {
                                FlowStatus::Done { at } if at + extra <= now => {
                                    flows.consume(id);
                                    None
                                }
                                FlowStatus::Done { at } => Some(at + extra),
                                FlowStatus::InFlight { wake, .. } => Some(wake),
                            }
                        }
                        Delivery::Rendezvous { .. } => {
                            unreachable!("flow fast path requires all-eager messages")
                        }
                    };
                    match arrival {
                        None => {
                            let m = st.ranks[me_idx].mailbox.remove(i).unwrap();
                            out[m.src as usize] = Some(m.msg);
                            missing -= 1;
                        }
                        Some(at) => {
                            wake = Some(wake.map_or(at, |w| w.min(at)));
                            i += 1;
                        }
                    }
                }
                if missing == 0 {
                    None
                } else if let Some(at) = wake {
                    Some(Step::Wait(at))
                } else {
                    // Nothing matched yet: park until any sender with this
                    // tag delivers.
                    st.ranks[me_idx].pending = Some((None, Some(tag)));
                    Some(Step::Park)
                }
            };
            match step {
                None => break,
                Some(Step::Wait(at)) => self.advance_to_or_die(at).await,
                Some(Step::Park) => self.park_or_die(timeout_at, None).await,
            }
        }
    }

    /// Charge `n` messages' worth of receive overhead in one advance (the
    /// batched tail of the flow-mode fast path).
    pub(crate) async fn batch_recv_overhead(&mut self, n: u64) {
        let o_r = self.world.spec.proto.recv_overhead(&self.world.ep);
        self.advance_comm_or_die(o_r * n).await;
    }

    /// Poll flow `id` to completion: advance to each flow transition as the
    /// network re-shares bandwidth, then to the flow's arrival (network
    /// completion plus `extra` endpoint time), consuming the flow record.
    ///
    /// This converges exactly: adding a flow never *raises* another flow's
    /// rate (a property-tested allocator invariant), so a completion estimate
    /// can only move later while we sleep — advancing to the estimate and
    /// re-polling therefore observes the true completion time.
    async fn await_flow(&self, id: netsim::FlowId, extra: SimTime) {
        let world = Arc::clone(&self.world);
        loop {
            let now = self.ctx.now();
            let status = world
                .state
                .lock()
                .flows
                .as_mut()
                .expect("flow model without flow net")
                .poll(now, id);
            match status {
                FlowStatus::Done { at } => {
                    let arrival = at + extra;
                    if arrival > now {
                        self.advance_to_or_die(arrival).await;
                    }
                    world.state.lock().flows.as_mut().expect("flow net").consume(id);
                    return;
                }
                FlowStatus::InFlight { wake, flows } => {
                    self.advance_to_or_die(wake).await;
                    if self.tracing() {
                        self.emit_trace(TraceEvent::FlowReshare {
                            rank: self.rank,
                            flows: flows as u64,
                        });
                    }
                }
            }
        }
    }

    /// Receiver side of the rendezvous protocol: process the RTS, return a
    /// CTS, clear the bulk transfer, wake the sender.
    async fn complete_rendezvous(
        &mut self,
        src: u32,
        tag: u32,
        msg: Msg,
        sender_pid: des::Pid,
        rts_arrival: SimTime,
    ) -> (u32, u32, Msg) {
        let world = Arc::clone(&self.world);
        let proto = world.spec.proto;
        let retry = world.spec.retry;
        // Process the RTS once it has arrived.
        self.advance_to_or_die(rts_arrival).await;
        let o_r = proto.recv_overhead(&world.ep);
        self.advance_comm_or_die(o_r).await;

        if self.cross_shard(src) {
            // The CTS rides the reverse path — the sender's shard's links —
            // so the whole CTS/bulk-transfer timing resolves at the window
            // barrier (see `crate::shard`). Park until the applier wakes us
            // at the bulk data's arrival; it wakes the sender too.
            self.push_packet(Packet::RdvComplete {
                at: self.ctx.now(),
                src,
                dst: self.rank,
                bytes: msg.bytes,
                sender_pid,
                receiver_pid: self.ctx.pid(),
            });
            self.ctx.park().await;
            let o_r2 = proto.recv_overhead(&world.ep);
            self.advance_comm_or_die(o_r2).await;
            self.emit_trace(TraceEvent::MsgDeliver { src, dst: self.rank, tag, bytes: msg.bytes });
            return (src, tag, msg);
        }

        let src_node = world.spec.node_of(src);
        let dst_node = world.spec.node_of(self.rank);
        // As on the eager path, cross-node bulk data rides a fluid flow under
        // the flow model; its arrival emerges from fair sharing below.
        let use_flow = world.net_model == NetModel::Flow && src_node != dst_node;
        let (data_arrival, sender_done, bulk_drops) = {
            let mut st = world.state.lock();
            self.stamp_guard_source(&mut st);
            let now = self.ctx.now();
            // CTS travels back; the sender starts the bulk transfer on its
            // arrival. The RTS/CTS control frames are assumed reliable; loss
            // applies to the bulk transfer below.
            let cts_arrival = st.net.transmit(now, dst_node, src_node, 128)
                + proto.send_overhead(&world.ep)
                + proto.recv_overhead(&world.ep);
            let wire = world.framed(msg.bytes);
            let link_bw = st.net.link_bw_bytes;
            // Push the bulk transfer through any loss window: each drop
            // delays the (remote) sender's departure by the backoff.
            let mut bulk_depart = cts_arrival;
            let mut attempts = 0u32;
            let mc = des::mc::current();
            loop {
                let loss = st.net.loss_probability(src_node, dst_node, bulk_depart);
                // As in the eager path, a model-checking controller decides
                // drops adversarially without advancing the seeded RNG.
                let dropped = match &mc {
                    Some(ctl) => loss > 0.0 && ctl.decide_drop(),
                    None => loss > 0.0 && st.rng.next_f64() < loss,
                };
                if dropped {
                    st.stats.retransmits += 1;
                    attempts += 1;
                    if attempts > retry.max_retries {
                        drop(st);
                        self.die(MpiFault::Timeout {
                            rank: self.rank,
                            peer: Some(src),
                            at: bulk_depart,
                            attempts,
                        });
                    }
                    bulk_depart += backoff(retry.retrans_base, attempts);
                    continue;
                }
                break;
            }
            let data_arrival: Result<SimTime, (netsim::FlowId, SimTime)> = if use_flow {
                let extra = st.net.path_latency(src_node, dst_node)
                    + world.endpoint_extra_serial(msg.bytes, link_bw);
                let id = st.flows.as_mut().expect("flow model without flow net").start(
                    now,
                    bulk_depart,
                    src_node,
                    dst_node,
                    wire,
                );
                Err((id, extra))
            } else {
                Ok(st.net.transmit(bulk_depart, src_node, dst_node, wire)
                    + world.endpoint_extra_serial(msg.bytes, link_bw))
            };
            let injection = SimTime::from_secs_f64(msg.bytes as f64 / world.cpu_stage_rate());
            let sender_done = (bulk_depart + injection).max(now);
            (data_arrival, sender_done, attempts)
        };
        if self.tracing() {
            for attempt in 1..=bulk_drops {
                self.emit_trace(TraceEvent::MsgDrop { src, dst: self.rank, attempt });
            }
        }
        self.ctx.wake_at(sender_pid, sender_done);
        match data_arrival {
            Ok(at) => self.advance_to_or_die(at).await,
            Err((id, extra)) => {
                if self.tracing() {
                    self.emit_trace(TraceEvent::FlowStart {
                        src,
                        dst: self.rank,
                        bytes: msg.bytes,
                    });
                }
                self.await_flow(id, extra).await;
                if self.tracing() {
                    self.emit_trace(TraceEvent::FlowFinish {
                        src,
                        dst: self.rank,
                        bytes: msg.bytes,
                    });
                }
            }
        }
        let o_r2 = proto.recv_overhead(&world.ep);
        self.advance_comm_or_die(o_r2).await;
        self.emit_trace(TraceEvent::MsgDeliver { src, dst: self.rank, tag, bytes: msg.bytes });
        (src, tag, msg)
    }

    /// Combined send-then-receive (deadlock-free pairwise exchange): sends to
    /// `dst` and receives the matching message from `from`.
    ///
    /// Eager sends never block, so everyone sends first and the exchange is
    /// fully parallel. A rendezvous-sized send *does* block until the
    /// receiver clears it, so there the lower rank sends first and the
    /// higher rank receives first (a chain that always resolves).
    pub async fn sendrecv(
        &mut self,
        dst: u32,
        send_tag: u32,
        msg: Msg,
        from: u32,
        recv_tag: u32,
    ) -> Msg {
        let rendezvous = self.world.spec.proto.needs_rendezvous(msg.bytes);
        if !rendezvous || self.rank < from {
            self.send(dst, send_tag, msg).await;
            self.recv(from, recv_tag).await
        } else {
            let m = self.recv(from, recv_tag).await;
            self.send(dst, send_tag, msg).await;
            m
        }
    }
}

/// Outcome of one mailbox scan ([`Rank::scan_mailbox`]); the world lock is
/// released before any of the (awaiting) follow-ups run.
enum Scan {
    /// A matched message whose data has arrived: consume it.
    Deliver(InMsg),
    /// A matched message still on the wire: advance to its arrival, re-scan.
    WaitWire(SimTime),
    /// A matched flow still transferring: advance to the network's next flow
    /// transition (carrying the concurrent-flow count for the re-share trace
    /// event), re-poll.
    WaitFlow(SimTime, u64),
    /// Nothing matched: park until a sender wakes us.
    Park,
}

/// Bounded exponential backoff: `base * 2^(attempt-1)`, capped at `base * 64`.
fn backoff(base: SimTime, attempt: u32) -> SimTime {
    base * (1u64 << (attempt.saturating_sub(1)).min(6))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::RetryPolicy;
    use des::{FaultEvent, FaultKind, FaultPlan, SimError};
    use soc_arch::Platform;

    fn spec(n: u32) -> JobSpec {
        JobSpec::new(Platform::tegra2(), n)
    }

    #[test]
    fn two_ranks_exchange_a_message() {
        let run = run_mpi(spec(2), |mut r| async move {
            if r.rank() == 0 {
                r.send(1, 7, Msg::from_f64s(&[1.0, 2.0, 3.0])).await;
                0.0
            } else {
                let m = r.recv(0, 7).await;
                m.to_f64s().iter().sum::<f64>()
            }
        })
        .unwrap();
        assert_eq!(run.results, vec![0.0, 6.0]);
        assert!(run.elapsed > SimTime::ZERO);
        assert_eq!(run.net.messages, 1);
        assert_eq!(run.net.payload_bytes, 24);
    }

    #[test]
    fn small_message_latency_matches_protocol_model() {
        // One-way 0-byte message on Tegra 2 + TCP should land near 100 µs.
        let run = run_mpi(spec(2), |mut r| async move {
            if r.rank() == 0 {
                r.send(1, 0, Msg::empty()).await;
            } else {
                r.recv(0, 0).await;
            }
            r.now().as_micros_f64()
        })
        .unwrap();
        let recv_done = run.results[1];
        assert!((85.0..115.0).contains(&recv_done), "latency {recv_done} us");
    }

    #[test]
    fn recv_posted_before_send_works() {
        // Receiver arrives first and parks.
        let run = run_mpi(spec(2), |mut r| async move {
            if r.rank() == 1 {
                let m = r.recv(0, 3).await;
                m.bytes
            } else {
                r.compute_secs(0.01).await; // make the receiver wait
                r.send(1, 3, Msg::size_only(1024)).await;
                0
            }
        })
        .unwrap();
        assert_eq!(run.results, vec![0, 1024]);
    }

    #[test]
    fn messages_from_same_sender_arrive_in_order() {
        let run = run_mpi(spec(2), |mut r| async move {
            if r.rank() == 0 {
                for i in 0..5u64 {
                    r.send(1, 9, Msg::from_u64s(&[i])).await;
                }
                Vec::new()
            } else {
                let mut got = Vec::new();
                for _ in 0..5 {
                    got.push(r.recv(0, 9).await.to_u64s()[0]);
                }
                got
            }
        })
        .unwrap();
        assert_eq!(run.results[1], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tag_matching_selects_correct_message() {
        let run = run_mpi(spec(2), |mut r| async move {
            if r.rank() == 0 {
                r.send(1, 1, Msg::from_u64s(&[111])).await;
                r.send(1, 2, Msg::from_u64s(&[222])).await;
                0
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let b = r.recv(0, 2).await.to_u64s()[0];
                let a = r.recv(0, 1).await.to_u64s()[0];
                assert_eq!((a, b), (111, 222));
                1
            }
        })
        .unwrap();
        assert_eq!(run.results[1], 1);
    }

    #[test]
    fn recv_any_reports_source() {
        let run = run_mpi(spec(3), |mut r| async move {
            if r.rank() == 0 {
                let (s1, _, _) = r.recv_any(5).await;
                let (s2, _, _) = r.recv_any(5).await;
                (s1 + s2) as u64
            } else {
                r.send(0, 5, Msg::empty()).await;
                0
            }
        })
        .unwrap();
        assert_eq!(run.results[0], 3); // sources 1 and 2 in some order
    }

    #[test]
    fn rendezvous_large_message_round_trips() {
        let spec = JobSpec::new(Platform::tegra2(), 2).with_proto(netsim::ProtocolModel::open_mx());
        let payload: Vec<f64> = (0..10_000).map(|i| i as f64).collect(); // 80 KB > 32 KiB threshold
        let expect_sum: f64 = payload.iter().sum();
        let run = run_mpi(spec, move |mut r| {
            let payload = payload.clone();
            async move {
                if r.rank() == 0 {
                    r.send(1, 0, Msg::from_f64s(&payload)).await;
                    0.0
                } else {
                    r.recv(0, 0).await.to_f64s().iter().sum::<f64>()
                }
            }
        })
        .unwrap();
        assert_eq!(run.results[1], expect_sum);
    }

    #[test]
    fn rendezvous_blocks_sender_until_receiver_posts() {
        let spec = JobSpec::new(Platform::tegra2(), 2).with_proto(netsim::ProtocolModel::open_mx());
        let run = run_mpi(spec, |mut r| async move {
            if r.rank() == 0 {
                r.send(1, 0, Msg::size_only(1 << 20)).await;
                r.now().as_secs_f64()
            } else {
                r.compute_secs(0.5).await; // receiver is late
                r.recv(0, 0).await;
                r.now().as_secs_f64()
            }
        })
        .unwrap();
        // The sender cannot have finished before the receiver posted at 0.5s.
        assert!(run.results[0] > 0.5, "sender returned at {}", run.results[0]);
    }

    #[test]
    fn eager_send_does_not_block_on_receiver() {
        let run = run_mpi(spec(2), |mut r| async move {
            if r.rank() == 0 {
                r.send(1, 0, Msg::size_only(512)).await;
                r.now().as_secs_f64()
            } else {
                r.compute_secs(1.0).await;
                r.recv(0, 0).await;
                0.0
            }
        })
        .unwrap();
        assert!(run.results[0] < 0.01, "eager sender blocked: {}", run.results[0]);
    }

    #[test]
    fn sendrecv_exchanges_without_deadlock() {
        let run = run_mpi(spec(2), |mut r| async move {
            let partner = 1 - r.rank();
            let m = r.sendrecv(partner, 4, Msg::from_u64s(&[r.rank() as u64]), partner, 4).await;
            m.to_u64s()[0]
        })
        .unwrap();
        assert_eq!(run.results, vec![1, 0]);
    }

    #[test]
    fn compute_accumulates_busy_time() {
        let run = run_mpi(spec(2), |mut r| async move {
            r.compute_secs(0.25).await;
            r.rank()
        })
        .unwrap();
        for busy in &run.compute_busy {
            assert_eq!(*busy, SimTime::from_millis(250));
        }
        assert!(run.compute_utilisation() > 0.99);
    }

    #[test]
    fn unmatched_recv_deadlocks_with_diagnostic() {
        let err = run_mpi(spec(2), |mut r| async move {
            if r.rank() == 1 {
                r.recv(0, 99).await; // never sent
            }
        })
        .unwrap_err();
        match err {
            MpiFault::Engine(SimError::Deadlock { parked, .. }) => {
                assert_eq!(parked, vec!["rank1".to_string()])
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    fn crash_plan(node: u32, at: SimTime) -> FaultPlan {
        FaultPlan::from_events(vec![FaultEvent { at, kind: FaultKind::NodeCrash { node } }])
    }

    fn degrade_plan(node: u32, loss: f64, until: SimTime) -> FaultPlan {
        FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::LinkDegrade { node, loss, duration: until },
        }])
    }

    #[test]
    fn invalid_spec_is_a_typed_error() {
        let mut bad = spec(8);
        bad.topology = netsim::TopologySpec::Star { nodes: 4 };
        match run_mpi(bad, |_| async {}) {
            Err(MpiFault::InvalidSpec(crate::JobSpecError::TooManyNodes {
                needed: 8,
                available: 4,
            })) => {}
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
    }

    #[test]
    fn crash_mid_compute_returns_rank_died_at_crash_time() {
        let crash = SimTime::from_millis(3);
        let s = spec(2).with_fault_plan(crash_plan(1, crash));
        let err = run_mpi(s, |mut r| async move {
            r.compute_secs(0.010).await; // rank 1 dies 3ms in
            r.rank()
        })
        .unwrap_err();
        assert_eq!(err, MpiFault::RankDied { rank: 1, node: 1, at: crash });
    }

    #[test]
    fn crash_while_peer_waits_kills_run_not_just_the_peer() {
        // Rank 1 crashes before sending; rank 0 is parked in recv. The run
        // must end with RankDied at the crash instant — no hang, and no
        // deadlock diagnostic.
        let crash = SimTime::from_millis(1);
        let s = spec(2).with_fault_plan(crash_plan(1, crash));
        let err = run_mpi(s, |mut r| async move {
            if r.rank() == 0 {
                r.recv(1, 0).await;
            } else {
                r.compute_secs(0.005).await; // never gets there
                r.send(0, 0, Msg::empty()).await;
            }
        })
        .unwrap_err();
        assert_eq!(err, MpiFault::RankDied { rank: 1, node: 1, at: crash });
    }

    #[test]
    fn recv_timeout_turns_missing_message_into_timeout() {
        let mut s = spec(2);
        s.retry.recv_timeout = Some(SimTime::from_millis(2));
        let err = run_mpi(s, |mut r| async move {
            if r.rank() == 1 {
                r.recv(0, 99).await; // never sent
            }
        })
        .unwrap_err();
        match err {
            MpiFault::Timeout { rank: 1, peer: Some(0), at, attempts: 0 } => {
                assert_eq!(at, SimTime::from_millis(2));
            }
            other => panic!("expected recv timeout, got {other:?}"),
        }
    }

    #[test]
    fn lossy_link_delivers_with_retransmits() {
        let s = spec(2).with_fault_plan(degrade_plan(1, 0.5, SimTime::from_secs(100)));
        let run = run_mpi(s, |mut r| async move {
            if r.rank() == 0 {
                for i in 0..8u64 {
                    r.send(1, 1, Msg::from_u64s(&[i])).await;
                }
                0
            } else {
                let mut sum = 0u64;
                for _ in 0..8 {
                    sum += r.recv(0, 1).await.to_u64s()[0];
                }
                sum
            }
        })
        .unwrap();
        assert_eq!(run.results[1], 28); // every payload survived
        assert!(run.net.retransmits > 0, "a 50% lossy link must drop something");
    }

    #[test]
    fn retry_exhaustion_is_a_send_timeout() {
        let s = spec(2)
            .with_fault_plan(degrade_plan(1, 0.99, SimTime::from_secs(100)))
            .with_retry(RetryPolicy { max_retries: 2, ..RetryPolicy::default() });
        let err = run_mpi(s, |mut r| async move {
            if r.rank() == 0 {
                r.send(1, 0, Msg::empty()).await;
            } else {
                r.recv(0, 0).await;
            }
        })
        .unwrap_err();
        match err {
            MpiFault::Timeout { rank: 0, peer: Some(1), attempts: 3, .. } => {}
            other => panic!("expected exhausted retries, got {other:?}"),
        }
    }

    #[test]
    fn rendezvous_bulk_survives_lossy_link() {
        let s = spec(2).with_proto(netsim::ProtocolModel::open_mx()).with_fault_plan(degrade_plan(
            0,
            0.5,
            SimTime::from_secs(100),
        ));
        let payload: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let expect: f64 = payload.iter().sum();
        let run = run_mpi(s, move |mut r| {
            let payload = payload.clone();
            async move {
                if r.rank() == 0 {
                    r.send(1, 0, Msg::from_f64s(&payload)).await;
                    0.0
                } else {
                    r.recv(0, 0).await.to_f64s().iter().sum::<f64>()
                }
            }
        })
        .unwrap();
        assert_eq!(run.results[1], expect);
        assert!(run.net.retransmits > 0);
    }

    #[test]
    fn bit_flips_are_polled_in_order() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent { at: SimTime::from_millis(1), kind: FaultKind::BitFlip { node: 0 } },
            FaultEvent { at: SimTime::from_millis(2), kind: FaultKind::BitFlip { node: 0 } },
        ]);
        let run = run_mpi(spec(1).with_fault_plan(plan), |mut r| async move {
            assert_eq!(r.poll_bit_flip(), None); // nothing struck yet
            r.compute_secs(0.0015).await;
            let first = r.poll_bit_flip();
            assert_eq!(first, Some(SimTime::from_millis(1)));
            assert_eq!(r.poll_bit_flip(), None); // second flip still pending
            r.compute_secs(0.0010).await;
            let second = r.poll_bit_flip();
            assert_eq!(second, Some(SimTime::from_millis(2)));
            (first.is_some() as u32) + (second.is_some() as u32)
        })
        .unwrap();
        assert_eq!(run.results, vec![2]);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let go = |seed: u64| {
            let plan = FaultPlan::generate(
                seed,
                4,
                SimTime::from_secs(10),
                &des::FaultRates {
                    degrade_per_node_sec: 0.5,
                    degrade_loss: 0.3,
                    degrade_duration: SimTime::from_secs(1),
                    ..des::FaultRates::none()
                },
            );
            run_mpi(spec(4).with_fault_plan(plan), |mut r| async move {
                let next = (r.rank() + 1) % r.size();
                let prev = (r.rank() + r.size() - 1) % r.size();
                for _ in 0..4 {
                    r.sendrecv(next, 1, Msg::size_only(4096), prev, 1).await;
                }
                r.now().as_nanos()
            })
            .unwrap()
        };
        let a = go(7);
        let b = go(7);
        assert_eq!(a.results, b.results);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.net, b.net);
    }

    #[test]
    fn node_map_relocates_faults_with_the_physical_node() {
        // Crash physical node 3. With the identity map, ranks 0/1 (nodes
        // 0/1) never touch node 3 and the run completes; remapping rank 1
        // onto physical node 3 puts it in the blast radius.
        let crash = crash_plan(3, SimTime::from_millis(1));
        let base =
            spec(2).with_topology(netsim::TopologySpec::Star { nodes: 4 }).with_fault_plan(crash);
        let ok = run_mpi(base.clone(), |mut r| async move {
            r.compute_secs(0.01).await;
            r.rank()
        })
        .unwrap();
        assert_eq!(ok.results, vec![0, 1]);
        let err = run_mpi(base.with_node_map(vec![0, 3]), |mut r| async move {
            r.compute_secs(0.01).await;
            r.rank()
        })
        .unwrap_err();
        assert_eq!(err, MpiFault::RankDied { rank: 1, node: 3, at: SimTime::from_millis(1) });
    }

    #[test]
    fn event_budget_turns_runaway_job_into_typed_fault() {
        // A ping-pong loop that would run ~forever: the budget aborts it
        // with a typed engine error instead of spinning.
        let s = spec(2).with_event_budget(Some(500));
        let err = run_mpi(s, |mut r| async move {
            let peer = 1 - r.rank();
            loop {
                if r.rank() == 0 {
                    r.send(peer, 0, Msg::empty()).await;
                    r.recv(peer, 0).await;
                } else {
                    r.recv(peer, 0).await;
                    r.send(peer, 0, Msg::empty()).await;
                }
            }
        })
        .unwrap_err();
        match err {
            MpiFault::Engine(SimError::EventBudgetExhausted { events, budget: 500, .. }) => {
                assert_eq!(events, 500);
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_leaves_results_identical() {
        let go = |budget: Option<u64>| {
            run_mpi(spec(4).with_event_budget(budget), |mut r| async move {
                let next = (r.rank() + 1) % r.size();
                let prev = (r.rank() + r.size() - 1) % r.size();
                r.sendrecv(next, 1, Msg::size_only(4096), prev, 1).await;
                r.now().as_nanos()
            })
            .unwrap()
        };
        let bounded = go(Some(10_000_000));
        let unbounded = go(None);
        assert_eq!(bounded.results, unbounded.results);
        assert_eq!(bounded.elapsed, unbounded.elapsed);
    }

    #[test]
    fn zero_event_budget_is_rejected_by_validation() {
        let err = run_mpi(spec(2).with_event_budget(Some(0)), |_| async {}).unwrap_err();
        assert_eq!(err, MpiFault::InvalidSpec(crate::JobSpecError::BadEventBudget));
    }

    #[test]
    fn flow_model_uncontended_p2p_matches_event_model_closely() {
        let go = |model: NetModel| {
            run_mpi(spec(2).with_net_model(Some(model)), |mut r| async move {
                if r.rank() == 0 {
                    r.send(1, 7, Msg::size_only(4096)).await;
                } else {
                    r.recv(0, 7).await;
                }
                r.now().as_secs_f64()
            })
            .unwrap()
        };
        let te = go(NetModel::Event).results[1];
        let tf = go(NetModel::Flow).results[1];
        // An uncontended transfer sees the full link under both models; the
        // only differences are nanosecond rounding and reservation none.
        assert!((tf - te).abs() / te < 0.02, "event {te}s vs flow {tf}s");
    }

    #[test]
    fn flow_model_rendezvous_round_trips() {
        let s = spec(2)
            .with_proto(netsim::ProtocolModel::open_mx())
            .with_net_model(Some(NetModel::Flow));
        let payload: Vec<f64> = (0..10_000).map(|i| i as f64).collect(); // 80 KB: rendezvous
        let expect: f64 = payload.iter().sum();
        let run = run_mpi(s, move |mut r| {
            let payload = payload.clone();
            async move {
                if r.rank() == 0 {
                    r.send(1, 0, Msg::from_f64s(&payload)).await;
                    0.0
                } else {
                    r.recv(0, 0).await.to_f64s().iter().sum::<f64>()
                }
            }
        })
        .unwrap();
        assert_eq!(run.results[1], expect);
    }

    #[test]
    fn flow_model_survives_lossy_link() {
        let s = spec(2)
            .with_fault_plan(degrade_plan(1, 0.5, SimTime::from_secs(100)))
            .with_net_model(Some(NetModel::Flow));
        let run = run_mpi(s, |mut r| async move {
            if r.rank() == 0 {
                for i in 0..8u64 {
                    r.send(1, 1, Msg::from_u64s(&[i])).await;
                }
                0
            } else {
                let mut sum = 0u64;
                for _ in 0..8 {
                    sum += r.recv(0, 1).await.to_u64s()[0];
                }
                sum
            }
        })
        .unwrap();
        assert_eq!(run.results[1], 28);
        assert!(run.net.retransmits > 0, "a 50% lossy link must drop something");
    }

    #[test]
    fn flow_model_runs_are_deterministic() {
        let go = || {
            run_mpi(spec(8).with_net_model(Some(NetModel::Flow)), |mut r| async move {
                let next = (r.rank() + 1) % r.size();
                let prev = (r.rank() + r.size() - 1) % r.size();
                for _ in 0..3 {
                    r.sendrecv(next, 1, Msg::size_only(4096), prev, 1).await;
                }
                r.now().as_nanos()
            })
            .unwrap()
        };
        let a = go();
        let b = go();
        assert_eq!(a.results, b.results);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn determinism_same_run_same_times() {
        let go = || {
            run_mpi(spec(4), |mut r| async move {
                let next = (r.rank() + 1) % r.size();
                let prev = (r.rank() + r.size() - 1) % r.size();
                let m = r.sendrecv(next, 1, Msg::size_only(4096), prev, 1).await;
                (r.now().as_nanos(), m.bytes)
            })
            .unwrap()
        };
        let a = go();
        let b = go();
        assert_eq!(a.results, b.results);
        assert_eq!(a.elapsed, b.elapsed);
    }
}
