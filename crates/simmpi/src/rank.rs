//! The per-rank API: point-to-point messaging, modelled compute, and the job
//! runner.

use std::sync::Arc;

use des::{Context, Engine, SimError, SimTime};
use parking_lot::Mutex;
use soc_arch::{kernel_time, WorkProfile};

use crate::payload::Msg;
use crate::world::{matches, Delivery, InMsg, JobSpec, NetStats, World};

/// A rank's handle to the simulated job. Passed to the rank body closure by
/// [`run_mpi`].
pub struct Rank<'a> {
    ctx: &'a Context,
    rank: u32,
    world: Arc<World>,
}

/// Result of a completed job.
#[derive(Debug)]
pub struct MpiRun<R> {
    /// Virtual wall-clock time of the job (last rank to finish).
    pub elapsed: SimTime,
    /// Per-rank return values, in rank order.
    pub results: Vec<R>,
    /// Per-rank modelled compute-busy time.
    pub compute_busy: Vec<SimTime>,
    /// Per-rank communication (protocol CPU) busy time.
    pub comm_busy: Vec<SimTime>,
    /// Network statistics.
    pub net: NetStats,
}

impl<R> MpiRun<R> {
    /// Average fraction of wall-clock the ranks spent in modelled compute.
    pub fn compute_utilisation(&self) -> f64 {
        if self.elapsed == SimTime::ZERO || self.compute_busy.is_empty() {
            return 0.0;
        }
        let total: f64 = self.compute_busy.iter().map(|t| t.as_secs_f64()).sum();
        total / (self.compute_busy.len() as f64 * self.elapsed.as_secs_f64())
    }
}

/// Run an MPI job: every rank executes `body` on its own simulated process.
///
/// Communication costs come from the job's protocol/topology models; compute
/// costs from [`Rank::compute`]. The run is bit-deterministic.
pub fn run_mpi<R, F>(spec: JobSpec, body: F) -> Result<MpiRun<R>, SimError>
where
    R: Send + 'static,
    F: Fn(&mut Rank<'_>) -> R + Send + Sync + 'static,
{
    let world = Arc::new(World::new(spec));
    let nranks = world.spec.ranks;
    let body = Arc::new(body);
    let results: Arc<Mutex<Vec<Option<R>>>> =
        Arc::new(Mutex::new((0..nranks).map(|_| None).collect()));

    let mut engine = Engine::new();
    for r in 0..nranks {
        let world_for_rank = Arc::clone(&world);
        let body = Arc::clone(&body);
        let results = Arc::clone(&results);
        let pid = engine.spawn(format!("rank{r}"), move |ctx| {
            let mut rank = Rank { ctx, rank: r, world: world_for_rank };
            let out = body(&mut rank);
            results.lock()[r as usize] = Some(out);
        });
        world.state.lock().ranks[r as usize].pid = Some(pid);
    }
    let report = engine.run()?;

    let mut st = world.state.lock();
    let compute_busy = st.ranks.iter().map(|r| r.compute_busy).collect();
    let comm_busy = st.ranks.iter().map(|r| r.comm_busy).collect();
    let net = std::mem::take(&mut st.stats);
    drop(st);
    let results = Arc::try_unwrap(results)
        .unwrap_or_else(|_| panic!("results still shared"))
        .into_inner()
        .into_iter()
        .map(|o| o.expect("rank did not produce a result"))
        .collect();
    Ok(MpiRun { elapsed: report.end_time, results, compute_busy, comm_busy, net })
}

impl Rank<'_> {
    /// This rank's id.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> u32 {
        self.world.spec.ranks
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// The job specification.
    pub fn spec(&self) -> &JobSpec {
        &self.world.spec
    }

    /// Model the execution of `work` on this rank's share of the node
    /// (advances virtual time by the roofline estimate).
    pub fn compute(&mut self, work: &WorkProfile) {
        let spec = &self.world.spec;
        let t = kernel_time(&spec.platform.soc, spec.freq_ghz, spec.cores_per_rank(), work);
        self.compute_secs(t.total_s);
    }

    /// Model `seconds` of computation.
    pub fn compute_secs(&mut self, seconds: f64) {
        let dt = SimTime::from_secs_f64(seconds);
        self.ctx.advance(dt);
        self.world.state.lock().ranks[self.rank as usize].compute_busy += dt;
    }

    fn tally_comm(&self, dt: SimTime) {
        self.world.state.lock().ranks[self.rank as usize].comm_busy += dt;
    }

    /// Blocking send of `msg` to rank `dst` with `tag`.
    ///
    /// Eager messages return once the payload has been injected; rendezvous
    /// messages (Open-MX above 32 KiB) block until the receiver has cleared
    /// the transfer, like `MPI_Send` beyond the eager threshold.
    pub fn send(&mut self, dst: u32, tag: u32, msg: Msg) {
        assert!(dst < self.size(), "send to invalid rank {dst}");
        assert!(dst != self.rank, "self-sends are not supported; restructure the algorithm");
        let world = Arc::clone(&self.world);
        let proto = world.spec.proto;
        let o_s = proto.send_overhead(&world.ep);
        self.ctx.advance(o_s);
        self.tally_comm(o_s);

        let bytes = msg.bytes;
        let src_node = world.spec.node_of(self.rank);
        let dst_node = world.spec.node_of(dst);

        if proto.needs_rendezvous(bytes) {
            // RTS: a minimal frame to the receiver.
            let (rts_arrival, my_pid) = {
                let mut st = world.state.lock();
                let depart = self.ctx.now();
                let rts_arrival = st.net.transmit(depart, src_node, dst_node, 128);
                st.stats.messages += 1;
                st.stats.payload_bytes += bytes;
                let my_pid = st.ranks[self.rank as usize].pid.unwrap();
                let dst_state = &mut st.ranks[dst as usize];
                dst_state.mailbox.push_back(InMsg {
                    src: self.rank,
                    tag,
                    msg,
                    delivery: Delivery::Rendezvous { sender_pid: my_pid, rts_arrival },
                });
                if let Some(f) = dst_state.pending {
                    if matches(&f, self.rank, tag) {
                        dst_state.pending = None;
                        let pid = dst_state.pid.unwrap();
                        let at = self.ctx.now().max(rts_arrival);
                        drop(st);
                        self.ctx.wake_at(pid, at);
                        // Park below.
                        (rts_arrival, my_pid)
                    } else {
                        (rts_arrival, my_pid)
                    }
                } else {
                    (rts_arrival, my_pid)
                }
            };
            let _ = (rts_arrival, my_pid);
            // Wait until the receiver completes the transfer and wakes us.
            self.ctx.park();
            return;
        }

        // Eager path.
        let injection;
        {
            let mut st = world.state.lock();
            let depart = self.ctx.now();
            let wire = world.framed(bytes);
            let link_bw = st.net.link_bw_bytes;
            let arrival =
                st.net.transmit(depart, src_node, dst_node, wire) + world.endpoint_extra_serial(bytes, link_bw);
            st.stats.messages += 1;
            st.stats.payload_bytes += bytes;
            let dst_state = &mut st.ranks[dst as usize];
            dst_state.mailbox.push_back(InMsg {
                src: self.rank,
                tag,
                msg,
                delivery: Delivery::Eager { available_at: arrival },
            });
            let wake = if let Some(f) = dst_state.pending {
                if matches(&f, self.rank, tag) {
                    dst_state.pending = None;
                    Some((dst_state.pid.unwrap(), self.ctx.now().max(arrival)))
                } else {
                    None
                }
            } else {
                None
            };
            drop(st);
            if let Some((pid, at)) = wake {
                self.ctx.wake_at(pid, at);
            }
            injection = SimTime::from_secs_f64(bytes as f64 / world.cpu_stage_rate());
        }
        // The sender's CPU is busy injecting the payload.
        self.ctx.advance(injection);
        self.tally_comm(injection);
    }

    /// Blocking receive matching exactly `(src, tag)`.
    pub fn recv(&mut self, src: u32, tag: u32) -> Msg {
        self.recv_filtered(Some(src), Some(tag)).2
    }

    /// Blocking receive from any source with a given tag. Returns
    /// `(src, tag, msg)`.
    pub fn recv_any(&mut self, tag: u32) -> (u32, u32, Msg) {
        self.recv_filtered(None, Some(tag))
    }

    /// Blocking receive with optional source/tag filters.
    pub fn recv_filtered(&mut self, src: Option<u32>, tag: Option<u32>) -> (u32, u32, Msg) {
        let world = Arc::clone(&self.world);
        let proto = world.spec.proto;
        let filter = (src, tag);
        loop {
            let found = {
                let mut st = world.state.lock();
                let me = &mut st.ranks[self.rank as usize];
                me.pending = None;
                match me.mailbox.iter().position(|m| matches(&filter, m.src, m.tag)) {
                    Some(idx) => {
                        let now = self.ctx.now();
                        match me.mailbox[idx].delivery {
                            Delivery::Eager { available_at } => {
                                if available_at <= now {
                                    Some(me.mailbox.remove(idx).unwrap())
                                } else {
                                    // Wait for the wire, then re-scan.
                                    drop(st);
                                    self.ctx.advance_to(available_at);
                                    continue;
                                }
                            }
                            Delivery::Rendezvous { .. } => Some(me.mailbox.remove(idx).unwrap()),
                        }
                    }
                    None => {
                        me.pending = Some(filter);
                        None
                    }
                }
            };
            match found {
                Some(m) => match m.delivery {
                    Delivery::Eager { .. } => {
                        let o_r = proto.recv_overhead(&world.ep);
                        self.ctx.advance(o_r);
                        self.tally_comm(o_r);
                        return (m.src, m.tag, m.msg);
                    }
                    Delivery::Rendezvous { sender_pid, rts_arrival } => {
                        return self.complete_rendezvous(m.src, m.tag, m.msg, sender_pid, rts_arrival);
                    }
                },
                None => {
                    // Park until a sender delivers a matching message.
                    self.ctx.park();
                }
            }
        }
    }

    /// Receiver side of the rendezvous protocol: process the RTS, return a
    /// CTS, clear the bulk transfer, wake the sender.
    fn complete_rendezvous(
        &mut self,
        src: u32,
        tag: u32,
        msg: Msg,
        sender_pid: des::Pid,
        rts_arrival: SimTime,
    ) -> (u32, u32, Msg) {
        let world = Arc::clone(&self.world);
        let proto = world.spec.proto;
        // Process the RTS once it has arrived.
        self.ctx.advance_to(rts_arrival);
        let o_r = proto.recv_overhead(&world.ep);
        self.ctx.advance(o_r);
        self.tally_comm(o_r);

        let src_node = world.spec.node_of(src);
        let dst_node = world.spec.node_of(self.rank);
        let (data_arrival, sender_done) = {
            let mut st = world.state.lock();
            let now = self.ctx.now();
            // CTS travels back; the sender starts the bulk transfer on its
            // arrival.
            let cts_arrival = st.net.transmit(now, dst_node, src_node, 128)
                + proto.send_overhead(&world.ep)
                + proto.recv_overhead(&world.ep);
            let wire = world.framed(msg.bytes);
            let link_bw = st.net.link_bw_bytes;
            let data_arrival = st.net.transmit(cts_arrival, src_node, dst_node, wire)
                + world.endpoint_extra_serial(msg.bytes, link_bw);
            let injection =
                SimTime::from_secs_f64(msg.bytes as f64 / world.cpu_stage_rate());
            let sender_done = (cts_arrival + injection).max(now);
            (data_arrival, sender_done)
        };
        self.ctx.wake_at(sender_pid, sender_done);
        self.ctx.advance_to(data_arrival);
        let o_r2 = proto.recv_overhead(&world.ep);
        self.ctx.advance(o_r2);
        self.tally_comm(o_r2);
        (src, tag, msg)
    }

    /// Combined send-then-receive (deadlock-free pairwise exchange): sends to
    /// `dst` and receives the matching message from `from`.
    ///
    /// Eager sends never block, so everyone sends first and the exchange is
    /// fully parallel. A rendezvous-sized send *does* block until the
    /// receiver clears it, so there the lower rank sends first and the
    /// higher rank receives first (a chain that always resolves).
    pub fn sendrecv(&mut self, dst: u32, send_tag: u32, msg: Msg, from: u32, recv_tag: u32) -> Msg {
        let rendezvous = self.world.spec.proto.needs_rendezvous(msg.bytes);
        if !rendezvous || self.rank < from {
            self.send(dst, send_tag, msg);
            self.recv(from, recv_tag)
        } else {
            let m = self.recv(from, recv_tag);
            self.send(dst, send_tag, msg);
            m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_arch::Platform;

    fn spec(n: u32) -> JobSpec {
        JobSpec::new(Platform::tegra2(), n)
    }

    #[test]
    fn two_ranks_exchange_a_message() {
        let run = run_mpi(spec(2), |r| {
            if r.rank() == 0 {
                r.send(1, 7, Msg::from_f64s(&[1.0, 2.0, 3.0]));
                0.0
            } else {
                let m = r.recv(0, 7);
                m.to_f64s().iter().sum::<f64>()
            }
        })
        .unwrap();
        assert_eq!(run.results, vec![0.0, 6.0]);
        assert!(run.elapsed > SimTime::ZERO);
        assert_eq!(run.net.messages, 1);
        assert_eq!(run.net.payload_bytes, 24);
    }

    #[test]
    fn small_message_latency_matches_protocol_model() {
        // One-way 0-byte message on Tegra 2 + TCP should land near 100 µs.
        let run = run_mpi(spec(2), |r| {
            if r.rank() == 0 {
                r.send(1, 0, Msg::empty());
            } else {
                r.recv(0, 0);
            }
            r.now().as_micros_f64()
        })
        .unwrap();
        let recv_done = run.results[1];
        assert!((85.0..115.0).contains(&recv_done), "latency {recv_done} us");
    }

    #[test]
    fn recv_posted_before_send_works() {
        // Receiver arrives first and parks.
        let run = run_mpi(spec(2), |r| {
            if r.rank() == 1 {
                let m = r.recv(0, 3);
                m.bytes
            } else {
                r.compute_secs(0.01); // make the receiver wait
                r.send(1, 3, Msg::size_only(1024));
                0
            }
        })
        .unwrap();
        assert_eq!(run.results, vec![0, 1024]);
    }

    #[test]
    fn messages_from_same_sender_arrive_in_order() {
        let run = run_mpi(spec(2), |r| {
            if r.rank() == 0 {
                for i in 0..5u64 {
                    r.send(1, 9, Msg::from_u64s(&[i]));
                }
                Vec::new()
            } else {
                (0..5).map(|_| r.recv(0, 9).to_u64s()[0]).collect::<Vec<u64>>()
            }
        })
        .unwrap();
        assert_eq!(run.results[1], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tag_matching_selects_correct_message() {
        let run = run_mpi(spec(2), |r| {
            if r.rank() == 0 {
                r.send(1, 1, Msg::from_u64s(&[111]));
                r.send(1, 2, Msg::from_u64s(&[222]));
                0
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let b = r.recv(0, 2).to_u64s()[0];
                let a = r.recv(0, 1).to_u64s()[0];
                assert_eq!((a, b), (111, 222));
                1
            }
        })
        .unwrap();
        assert_eq!(run.results[1], 1);
    }

    #[test]
    fn recv_any_reports_source() {
        let run = run_mpi(spec(3), |r| {
            if r.rank() == 0 {
                let (s1, _, _) = r.recv_any(5);
                let (s2, _, _) = r.recv_any(5);
                (s1 + s2) as u64
            } else {
                r.send(0, 5, Msg::empty());
                0
            }
        })
        .unwrap();
        assert_eq!(run.results[0], 3); // sources 1 and 2 in some order
    }

    #[test]
    fn rendezvous_large_message_round_trips() {
        let spec = JobSpec::new(Platform::tegra2(), 2).with_proto(netsim::ProtocolModel::open_mx());
        let payload: Vec<f64> = (0..10_000).map(|i| i as f64).collect(); // 80 KB > 32 KiB threshold
        let expect_sum: f64 = payload.iter().sum();
        let run = run_mpi(spec, move |r| {
            if r.rank() == 0 {
                r.send(1, 0, Msg::from_f64s(&payload));
                0.0
            } else {
                r.recv(0, 0).to_f64s().iter().sum::<f64>()
            }
        })
        .unwrap();
        assert_eq!(run.results[1], expect_sum);
    }

    #[test]
    fn rendezvous_blocks_sender_until_receiver_posts() {
        let spec = JobSpec::new(Platform::tegra2(), 2).with_proto(netsim::ProtocolModel::open_mx());
        let run = run_mpi(spec, |r| {
            if r.rank() == 0 {
                r.send(1, 0, Msg::size_only(1 << 20));
                r.now().as_secs_f64()
            } else {
                r.compute_secs(0.5); // receiver is late
                r.recv(0, 0);
                r.now().as_secs_f64()
            }
        })
        .unwrap();
        // The sender cannot have finished before the receiver posted at 0.5s.
        assert!(run.results[0] > 0.5, "sender returned at {}", run.results[0]);
    }

    #[test]
    fn eager_send_does_not_block_on_receiver() {
        let run = run_mpi(spec(2), |r| {
            if r.rank() == 0 {
                r.send(1, 0, Msg::size_only(512));
                r.now().as_secs_f64()
            } else {
                r.compute_secs(1.0);
                r.recv(0, 0);
                0.0
            }
        })
        .unwrap();
        assert!(run.results[0] < 0.01, "eager sender blocked: {}", run.results[0]);
    }

    #[test]
    fn sendrecv_exchanges_without_deadlock() {
        let run = run_mpi(spec(2), |r| {
            let partner = 1 - r.rank();
            let m = r.sendrecv(partner, 4, Msg::from_u64s(&[r.rank() as u64]), partner, 4);
            m.to_u64s()[0]
        })
        .unwrap();
        assert_eq!(run.results, vec![1, 0]);
    }

    #[test]
    fn compute_accumulates_busy_time() {
        let run = run_mpi(spec(2), |r| {
            r.compute_secs(0.25);
            r.rank()
        })
        .unwrap();
        for busy in &run.compute_busy {
            assert_eq!(*busy, SimTime::from_millis(250));
        }
        assert!(run.compute_utilisation() > 0.99);
    }

    #[test]
    fn unmatched_recv_deadlocks_with_diagnostic() {
        let err = run_mpi(spec(2), |r| {
            if r.rank() == 1 {
                r.recv(0, 99); // never sent
            }
        })
        .unwrap_err();
        match err {
            SimError::Deadlock { parked, .. } => assert_eq!(parked, vec!["rank1".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn determinism_same_run_same_times() {
        let go = || {
            run_mpi(spec(4), |r| {
                let next = (r.rank() + 1) % r.size();
                let prev = (r.rank() + r.size() - 1) % r.size();
                let m = r.sendrecv(next, 1, Msg::size_only(4096), prev, 1);
                (r.now().as_nanos(), m.bytes)
            })
            .unwrap()
        };
        let a = go();
        let b = go();
        assert_eq!(a.results, b.results);
        assert_eq!(a.elapsed, b.elapsed);
    }
}
