//! The evaluated platforms (paper Table 1) plus the ARMv8 projection.

use serde::{Deserialize, Serialize};

use crate::memory::{CacheModel, DramKind, MemoryModel};
use crate::uarch::{CoreModel, Microarch};

/// How the Ethernet NIC is attached to the SoC (§4.1: "on SECO boards the
/// network controller is connected via PCI Express and on Arndale it is
/// connected via a USB 3.0 port").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NicAttach {
    /// NIC behind the SoC's PCIe root (Tegra 2/3 SECO kits).
    Pcie,
    /// NIC behind a USB 3.0 host controller + USB network stack (Arndale).
    Usb3,
    /// On-die / chipset-integrated NIC path (laptop / server parts).
    Integrated,
}

/// A complete SoC model: cores + caches + memory controller + DVFS range.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Soc {
    /// SoC marketing name (Table 1 "SoC name").
    pub name: &'static str,
    /// Number of physical cores.
    pub cores: u32,
    /// Number of hardware threads (differs from cores only on the i7).
    pub threads: u32,
    /// Maximum CPU frequency in GHz.
    pub fmax_ghz: f64,
    /// Available DVFS operating points in GHz, ascending.
    pub dvfs_ghz: Vec<f64>,
    /// Core microarchitecture model.
    pub core: CoreModel,
    /// Cache hierarchy.
    pub cache: CacheModel,
    /// Memory controller + DRAM.
    pub mem: MemoryModel,
    /// SMT throughput bonus: relative extra throughput from running 2 threads
    /// per core (0.0 for non-SMT parts, ~0.25 for Sandy Bridge HT).
    pub smt_yield: f64,
    /// Multiplier on per-core throughput when several cores share the work on
    /// cache-sensitive patterns: per-core working sets shrink with the thread
    /// count, raising hit rates in the shared L2/L3. This is the mechanism
    /// behind the super-linear multicore energy gains the paper reports for
    /// the Arndale (Fig 4: 2.25× less energy on a 2-core SoC implies > 2×
    /// throughput scaling).
    pub parallel_cache_bonus: f64,
}

impl Soc {
    /// Peak FP64 GFLOPS at frequency `f_ghz` using all cores
    /// (Table 1 "FP-64 GFLOPS" row when `f_ghz == fmax`).
    pub fn peak_gflops(&self, f_ghz: f64) -> f64 {
        self.cores as f64 * self.core.fp64_flops_per_cycle * f_ghz
    }

    /// Peak FP64 GFLOPS at the maximum frequency.
    pub fn peak_gflops_max(&self) -> f64 {
        self.peak_gflops(self.fmax_ghz)
    }

    /// Whether `f_ghz` is a supported operating point (within 1 MHz).
    pub fn supports_freq(&self, f_ghz: f64) -> bool {
        self.dvfs_ghz.iter().any(|&p| (p - f_ghz).abs() < 1e-3)
    }
}

/// A platform under evaluation: an SoC on a developer kit / laptop
/// (Table 1 "Developer kit" rows).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Platform {
    /// Short identifier used in results tables (e.g. `"tegra2"`).
    pub id: &'static str,
    /// Developer-kit name (Table 1).
    pub kit_name: &'static str,
    /// The SoC.
    pub soc: Soc,
    /// NIC attach path.
    pub nic: NicAttach,
    /// Ethernet link speed available for cluster use, in Mbit/s.
    pub eth_mbit: u32,
}

impl Platform {
    /// NVIDIA Tegra 2 on the SECO Q7 module + carrier.
    pub fn tegra2() -> Platform {
        Platform {
            id: "tegra2",
            kit_name: "SECO Q7 module + carrier",
            soc: Soc {
                name: "NVIDIA Tegra 2",
                cores: 2,
                threads: 2,
                fmax_ghz: 1.0,
                dvfs_ghz: vec![0.456, 0.608, 0.760, 0.912, 1.0],
                core: CoreModel::cortex_a9(),
                cache: CacheModel {
                    l1i_kib: 32,
                    l1d_kib: 32,
                    l2_kib: 1024,
                    l2_shared: true,
                    l3_kib: None,
                    line_bytes: 64,
                },
                mem: MemoryModel {
                    channels: 1,
                    width_bits: 32,
                    freq_mhz: 333.0,
                    peak_bw_gbs: 2.6,
                    stream_eff_single: 0.55,
                    stream_eff_multi: 0.62,
                    kernel_eff_single: 0.31,
                    kernel_eff_multi: 0.62,
                    latency_ns: 115.0,
                    dram: DramKind::Ddr2_667,
                    dram_gib: 1.0,
                },
                smt_yield: 0.0,
                parallel_cache_bonus: 1.1,
            },
            nic: NicAttach::Pcie,
            eth_mbit: 1000,
        }
    }

    /// NVIDIA Tegra 3 on the SECO CARMA kit.
    pub fn tegra3() -> Platform {
        Platform {
            id: "tegra3",
            kit_name: "SECO CARMA",
            soc: Soc {
                name: "NVIDIA Tegra 3",
                cores: 4,
                threads: 4,
                fmax_ghz: 1.3,
                dvfs_ghz: vec![0.51, 0.62, 0.76, 0.91, 1.0, 1.15, 1.3],
                core: CoreModel::cortex_a9(),
                cache: CacheModel {
                    l1i_kib: 32,
                    l1d_kib: 32,
                    l2_kib: 1024,
                    l2_shared: true,
                    l3_kib: None,
                    line_bytes: 64,
                },
                mem: MemoryModel {
                    channels: 1,
                    width_bits: 32,
                    freq_mhz: 750.0,
                    peak_bw_gbs: 5.86,
                    stream_eff_single: 0.25,
                    stream_eff_multi: 0.27,
                    kernel_eff_single: 0.158,
                    kernel_eff_multi: 0.37,
                    latency_ns: 105.0,
                    dram: DramKind::Ddr3L1600,
                    dram_gib: 2.0,
                },
                smt_yield: 0.0,
                parallel_cache_bonus: 1.15,
            },
            nic: NicAttach::Pcie,
            eth_mbit: 1000,
        }
    }

    /// Samsung Exynos 5250 ("Exynos 5 Dual") on the Arndale 5 board.
    pub fn exynos5250() -> Platform {
        Platform {
            id: "exynos5250",
            kit_name: "Arndale 5",
            soc: Soc {
                name: "Samsung Exynos 5250",
                cores: 2,
                threads: 2,
                fmax_ghz: 1.7,
                dvfs_ghz: vec![0.6, 0.8, 1.0, 1.2, 1.4, 1.7],
                core: CoreModel::cortex_a15(),
                cache: CacheModel {
                    l1i_kib: 32,
                    l1d_kib: 32,
                    l2_kib: 1024,
                    l2_shared: true,
                    l3_kib: None,
                    line_bytes: 64,
                },
                mem: MemoryModel {
                    channels: 2,
                    width_bits: 32,
                    freq_mhz: 800.0,
                    peak_bw_gbs: 12.8,
                    stream_eff_single: 0.38,
                    stream_eff_multi: 0.52,
                    kernel_eff_single: 0.082,
                    kernel_eff_multi: 0.24,
                    latency_ns: 90.0,
                    dram: DramKind::Ddr3L1600,
                    dram_gib: 2.0,
                },
                smt_yield: 0.0,
                parallel_cache_bonus: 1.25,
            },
            nic: NicAttach::Usb3,
            eth_mbit: 100,
        }
    }

    /// Intel Core i7-2760QM in the Dell Latitude E6420 laptop.
    pub fn core_i7_2760qm() -> Platform {
        Platform {
            id: "i7-2760qm",
            kit_name: "Dell Latitude E6420",
            soc: Soc {
                name: "Intel Core i7-2760QM",
                cores: 4,
                threads: 8,
                fmax_ghz: 2.4,
                dvfs_ghz: vec![0.8, 1.0, 1.2, 1.6, 2.0, 2.4],
                core: CoreModel::sandy_bridge(),
                cache: CacheModel {
                    l1i_kib: 32,
                    l1d_kib: 32,
                    l2_kib: 256,
                    l2_shared: false,
                    l3_kib: Some(6144),
                    line_bytes: 64,
                },
                mem: MemoryModel {
                    channels: 2,
                    width_bits: 64,
                    freq_mhz: 800.0,
                    peak_bw_gbs: 25.6,
                    stream_eff_single: 0.40,
                    stream_eff_multi: 0.57,
                    kernel_eff_single: 0.082,
                    kernel_eff_multi: 0.40,
                    latency_ns: 65.0,
                    dram: DramKind::Ddr3_1133,
                    dram_gib: 8.0,
                },
                smt_yield: 0.25,
                parallel_cache_bonus: 1.15,
            },
            nic: NicAttach::Integrated,
            eth_mbit: 1000,
        }
    }

    /// The paper's forward projection (§1, §3.1.2): a quad-core ARMv8 part at
    /// 2 GHz with FP64 in the NEON unit — used in Fig 2(b) as the
    /// "4-core ARMv8 @ 2GHz" point.
    pub fn armv8_projection() -> Platform {
        Platform {
            id: "armv8-4c-2ghz",
            kit_name: "projected ARMv8 SoC",
            soc: Soc {
                name: "4-core ARMv8 @ 2GHz (projected)",
                cores: 4,
                threads: 4,
                fmax_ghz: 2.0,
                dvfs_ghz: vec![0.8, 1.0, 1.2, 1.6, 2.0],
                core: CoreModel::armv8_projected(),
                cache: CacheModel {
                    l1i_kib: 32,
                    l1d_kib: 32,
                    l2_kib: 2048,
                    l2_shared: true,
                    l3_kib: None,
                    line_bytes: 64,
                },
                mem: MemoryModel {
                    channels: 2,
                    width_bits: 64,
                    freq_mhz: 800.0,
                    peak_bw_gbs: 25.6,
                    stream_eff_single: 0.40,
                    stream_eff_multi: 0.55,
                    kernel_eff_single: 0.10,
                    kernel_eff_multi: 0.30,
                    latency_ns: 85.0,
                    dram: DramKind::Ddr3L1600,
                    dram_gib: 4.0,
                },
                smt_yield: 0.0,
                parallel_cache_bonus: 1.2,
            },
            nic: NicAttach::Integrated,
            eth_mbit: 10_000,
        }
    }

    /// The four platforms of Table 1, in the paper's column order.
    pub fn table1() -> Vec<Platform> {
        vec![
            Platform::tegra2(),
            Platform::tegra3(),
            Platform::exynos5250(),
            Platform::core_i7_2760qm(),
        ]
    }

    /// Look up a platform by its `id`.
    pub fn by_id(id: &str) -> Option<Platform> {
        Self::table1()
            .into_iter()
            .chain(std::iter::once(Self::armv8_projection()))
            .find(|p| p.id == id)
    }

    /// Whether this is one of the mobile (ARM) platforms.
    pub fn is_mobile(&self) -> bool {
        !matches!(self.soc.core.uarch, Microarch::SandyBridge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_gflops_match_table1() {
        assert!((Platform::tegra2().soc.peak_gflops_max() - 2.0).abs() < 1e-9);
        assert!((Platform::tegra3().soc.peak_gflops_max() - 5.2).abs() < 1e-9);
        assert!((Platform::exynos5250().soc.peak_gflops_max() - 6.8).abs() < 1e-9);
        assert!((Platform::core_i7_2760qm().soc.peak_gflops_max() - 76.8).abs() < 1e-9);
    }

    #[test]
    fn table1_core_counts_and_threads() {
        let t = Platform::table1();
        assert_eq!(
            t.iter().map(|p| (p.soc.cores, p.soc.threads)).collect::<Vec<_>>(),
            vec![(2, 2), (4, 4), (2, 2), (4, 8)]
        );
    }

    #[test]
    fn peak_bandwidths_match_table1() {
        let bw: Vec<f64> = Platform::table1().iter().map(|p| p.soc.mem.peak_bw_gbs).collect();
        assert_eq!(bw, vec![2.6, 5.86, 12.8, 25.6]);
    }

    #[test]
    fn dvfs_points_are_ascending_and_end_at_fmax() {
        for p in Platform::table1() {
            let d = &p.soc.dvfs_ghz;
            assert!(d.windows(2).all(|w| w[0] < w[1]), "{} dvfs not ascending", p.id);
            assert!((d.last().unwrap() - p.soc.fmax_ghz).abs() < 1e-9);
            assert!(p.soc.supports_freq(p.soc.fmax_ghz));
            assert!(!p.soc.supports_freq(9.9));
        }
    }

    #[test]
    fn by_id_round_trips() {
        for p in Platform::table1() {
            assert_eq!(Platform::by_id(p.id).unwrap().id, p.id);
        }
        assert!(Platform::by_id("armv8-4c-2ghz").is_some());
        assert!(Platform::by_id("nope").is_none());
    }

    #[test]
    fn mobile_classification() {
        assert!(Platform::tegra2().is_mobile());
        assert!(Platform::exynos5250().is_mobile());
        assert!(!Platform::core_i7_2760qm().is_mobile());
    }

    #[test]
    fn armv8_projection_doubles_a15_flops_per_cycle() {
        let a15 = Platform::exynos5250().soc.core.fp64_flops_per_cycle;
        let v8 = Platform::armv8_projection().soc.core.fp64_flops_per_cycle;
        assert_eq!(v8, 2.0 * a15);
    }

    #[test]
    fn nic_attach_matches_section_4_1() {
        assert_eq!(Platform::tegra2().nic, NicAttach::Pcie);
        assert_eq!(Platform::exynos5250().nic, NicAttach::Usb3);
    }
}
