//! Roofline analysis: the attainable-performance envelope each platform
//! imposes on a kernel, as a function of arithmetic intensity.
//!
//! This is the analysis view of the timing engine: where §3's per-kernel
//! results come from. A kernel with intensity `I` (flops/byte) on a machine
//! with peak `F` and bandwidth `B` attains at most `min(F, I·B)`; the ridge
//! point `F/B` separates memory-bound from compute-bound kernels, and the
//! Table-1 platforms differ radically in where that ridge sits.

use serde::{Deserialize, Serialize};

use crate::platform::Soc;
use crate::work::{AccessPattern, WorkProfile};

/// One platform's roofline at a frequency/thread configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Roofline {
    /// SoC name.
    pub soc: &'static str,
    /// Frequency, GHz.
    pub freq_ghz: f64,
    /// Threads used.
    pub threads: u32,
    /// Attainable peak compute (GFLOPS) for streaming-pattern code.
    pub peak_gflops: f64,
    /// Attained memory bandwidth (GB/s) for streaming-pattern code.
    pub bandwidth_gbs: f64,
    /// Ridge-point intensity (flops/byte) where the roofs meet.
    pub ridge_intensity: f64,
}

/// Compute the (attained, not theoretical) roofline of a SoC configuration,
/// using the streaming pattern for both roofs.
pub fn roofline(soc: &Soc, freq_ghz: f64, threads: u32) -> Roofline {
    let probe_compute = WorkProfile::new("probe-c", 1e12, 0.0, AccessPattern::Streaming);
    let probe_memory = WorkProfile::new("probe-m", 0.0, 1e12, AccessPattern::Streaming);
    let tc = crate::timing::kernel_time(soc, freq_ghz, threads, &probe_compute);
    let tm = crate::timing::kernel_time(soc, freq_ghz, threads, &probe_memory);
    let peak_gflops = 1e12 / tc.total_s / 1e9;
    let bandwidth_gbs = 1e12 / tm.total_s / 1e9;
    Roofline {
        soc: soc.name,
        freq_ghz,
        threads,
        peak_gflops,
        bandwidth_gbs,
        ridge_intensity: peak_gflops / bandwidth_gbs,
    }
}

impl Roofline {
    /// Attainable GFLOPS at arithmetic intensity `i` (flops/byte).
    pub fn attainable_gflops(&self, i: f64) -> f64 {
        assert!(i >= 0.0);
        self.peak_gflops.min(i * self.bandwidth_gbs)
    }

    /// Whether a kernel of the given profile is memory-bound on this roof.
    pub fn is_memory_bound(&self, work: &WorkProfile) -> bool {
        work.arithmetic_intensity() < self.ridge_intensity
    }

    /// Sample the roof at a sequence of intensities (for plotting).
    pub fn series(&self, intensities: &[f64]) -> Vec<(f64, f64)> {
        intensities.iter().map(|&i| (i, self.attainable_gflops(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    #[test]
    fn roof_shape_is_min_of_two_lines() {
        let r = roofline(&Platform::tegra2().soc, 1.0, 2);
        // Below the ridge: linear in intensity.
        let low = r.attainable_gflops(r.ridge_intensity / 4.0);
        assert!((low - r.bandwidth_gbs * r.ridge_intensity / 4.0).abs() < 1e-9);
        // Above the ridge: flat at peak.
        assert_eq!(r.attainable_gflops(r.ridge_intensity * 10.0), r.peak_gflops);
        // Monotone non-decreasing overall.
        let s = r.series(&[0.1, 0.5, 1.0, 5.0, 50.0]);
        assert!(s.windows(2).all(|w| w[1].1 >= w[0].1));
    }

    #[test]
    fn i7_ridge_sits_far_right_of_tegra2() {
        // The i7 has much more compute per byte of bandwidth *attained by
        // untuned code*, so more kernels are memory-bound on it.
        let t2 = roofline(&Platform::tegra2().soc, 1.0, 2);
        let i7 = roofline(&Platform::core_i7_2760qm().soc, 2.4, 4);
        assert!(i7.ridge_intensity > t2.ridge_intensity);
        assert!(i7.peak_gflops > t2.peak_gflops);
    }

    #[test]
    fn suite_kernels_classify_sensibly() {
        // vecop-like streaming work is memory-bound everywhere; a matmul-
        // intensity kernel is compute-bound on the ARM parts.
        let t2 = roofline(&Platform::tegra2().soc, 1.0, 2);
        let daxpy = WorkProfile::new("daxpy", 2e8, 2.4e9, AccessPattern::Streaming);
        let gemm = WorkProfile::new("gemm", 2e11, 2e9, AccessPattern::LocalityRich);
        assert!(t2.is_memory_bound(&daxpy));
        assert!(!t2.is_memory_bound(&gemm));
    }

    #[test]
    fn roofline_scales_with_frequency() {
        let soc = Platform::exynos5250().soc;
        let lo = roofline(&soc, 1.0, 2);
        let hi = roofline(&soc, 1.7, 2);
        assert!(hi.peak_gflops > lo.peak_gflops);
        assert!(hi.bandwidth_gbs >= lo.bandwidth_gbs);
    }
}
