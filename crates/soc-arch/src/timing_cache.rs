//! A memoizing cache in front of [`kernel_time`]: the sweep harness
//! evaluates the same (platform, kernel, problem size) roofline cells over
//! and over — Fig 3 and Fig 4 share every baseline evaluation, Fig 5 and the
//! rooflines revisit the same SoCs, and the resilience sweep re-times
//! identical HPL panel updates across attempts. Caching the breakdown makes
//! those repeats free while keeping results bit-identical (a hit returns
//! exactly the value a miss computed).
//!
//! The cache is a process-global sharded hash map keyed on a fingerprint of
//! the SoC model, the frequency bits, the thread count, and the work
//! profile's numeric content. Hit/miss counters feed the sweep harness's
//! `_sweep_stats.json`; under concurrency two threads may both miss the same
//! key (both compute the same value — harmless), so the counters are
//! *reporting* data, not part of any determinism contract.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

// parking_lot rather than std: the sweep supervisor quarantines panicking
// cells with `catch_unwind`, and a panic while a shard is held must not
// poison the cache for every surviving cell.
use parking_lot::Mutex;
use serde::Serialize;

use crate::platform::Soc;
use crate::timing::{kernel_time, TimeBreakdown};
use crate::work::WorkProfile;

const SHARDS: usize = 16;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    soc_fp: u64,
    freq_bits: u64,
    threads: u32,
    work_fp: u64,
}

struct Cache {
    shards: Vec<Mutex<HashMap<Key, TimeBreakdown>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| Cache {
        shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// Snapshot of the cache's hit/miss counters.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the timing model.
    pub misses: u64,
}

impl CacheCounters {
    /// Hits as a fraction of all lookups (0 when the cache is untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter movement between two snapshots (`later - self`).
    pub fn delta_to(&self, later: &CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: later.hits.saturating_sub(self.hits),
            misses: later.misses.saturating_sub(self.misses),
        }
    }
}

/// Current global hit/miss counters.
pub fn cache_counters() -> CacheCounters {
    let c = cache();
    CacheCounters { hits: c.hits.load(Ordering::Relaxed), misses: c.misses.load(Ordering::Relaxed) }
}

fn sip() -> std::collections::hash_map::DefaultHasher {
    // DefaultHasher::new() uses fixed keys, so fingerprints are stable
    // within (and across) processes — a requirement for deterministic
    // debugging, though correctness only needs within-process stability.
    std::collections::hash_map::DefaultHasher::new()
}

/// Fingerprint of every model parameter a [`Soc`] contributes to
/// [`kernel_time`]. Hashes the full `Debug` rendering: it covers every field
/// (new fields can never silently alias two different platforms) at a cost
/// only paid once per suite call, not per kernel evaluation.
pub fn soc_fingerprint(soc: &Soc) -> u64 {
    let mut h = sip();
    format!("{soc:?}").hash(&mut h);
    h.finish()
}

fn work_fingerprint(work: &WorkProfile) -> u64 {
    let mut h = sip();
    work.flops.to_bits().hash(&mut h);
    work.dram_bytes.to_bits().hash(&mut h);
    work.pattern.hash(&mut h);
    work.parallel_fraction.to_bits().hash(&mut h);
    work.imbalance.to_bits().hash(&mut h);
    h.finish()
}

/// [`kernel_time`] with memoization, for callers that already computed the
/// SoC fingerprint (suite loops, the simulated-MPI compute path).
pub fn cached_kernel_time_fp(
    soc_fp: u64,
    soc: &Soc,
    f_ghz: f64,
    threads: u32,
    work: &WorkProfile,
) -> TimeBreakdown {
    let key = Key { soc_fp, freq_bits: f_ghz.to_bits(), threads, work_fp: work_fingerprint(work) };
    let c = cache();
    let mut h = sip();
    key.hash(&mut h);
    let shard = &c.shards[(h.finish() as usize) % SHARDS];
    if let Some(t) = shard.lock().get(&key) {
        c.hits.fetch_add(1, Ordering::Relaxed);
        return t.clone();
    }
    c.misses.fetch_add(1, Ordering::Relaxed);
    let t = kernel_time(soc, f_ghz, threads, work);
    shard.lock().insert(key, t.clone());
    t
}

/// Memoized [`kernel_time`]: identical results, repeated evaluations free.
pub fn cached_kernel_time(
    soc: &Soc,
    f_ghz: f64,
    threads: u32,
    work: &WorkProfile,
) -> TimeBreakdown {
    cached_kernel_time_fp(soc_fingerprint(soc), soc, f_ghz, threads, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::work::AccessPattern;

    #[test]
    fn cached_equals_uncached_bit_for_bit() {
        let soc = Platform::exynos5250().soc;
        let w = WorkProfile::new("w", 3.7e8, 1.9e9, AccessPattern::Strided);
        let direct = kernel_time(&soc, 1.4, 2, &w);
        let c1 = cached_kernel_time(&soc, 1.4, 2, &w);
        let c2 = cached_kernel_time(&soc, 1.4, 2, &w);
        assert_eq!(direct, c1);
        assert_eq!(direct, c2);
    }

    #[test]
    fn repeats_hit_and_distinct_keys_miss() {
        let soc = Platform::tegra3().soc;
        let w = WorkProfile::new("w", 1.23e8, 4.56e8, AccessPattern::Irregular);
        let before = cache_counters();
        cached_kernel_time(&soc, 1.3, 4, &w);
        cached_kernel_time(&soc, 1.3, 4, &w);
        cached_kernel_time(&soc, 1.3, 4, &w);
        let d = before.delta_to(&cache_counters());
        assert!(d.hits >= 2, "expected >= 2 hits, got {d:?}");
        assert!(d.misses >= 1, "expected >= 1 miss, got {d:?}");
        // A different frequency is a different key: the result must differ
        // (so a key collision would be caught).
        let a = cached_kernel_time(&soc, 1.0, 4, &w);
        let b = cached_kernel_time(&soc, 1.3, 4, &w);
        assert_ne!(a.total_s, b.total_s);
    }

    #[test]
    fn fingerprints_separate_platforms_and_profiles() {
        let fps: Vec<u64> = Platform::table1().iter().map(|p| soc_fingerprint(&p.soc)).collect();
        let mut dedup = fps.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), fps.len(), "platform fingerprints collide: {fps:?}");

        let w1 = WorkProfile::new("a", 1e8, 2e8, AccessPattern::Streaming);
        let w2 = WorkProfile::new("a", 1e8, 2e8, AccessPattern::Streaming).with_imbalance(0.1);
        assert_ne!(work_fingerprint(&w1), work_fingerprint(&w2));
    }
}
