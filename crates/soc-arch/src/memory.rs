//! Memory-controller and cache-hierarchy models (Table 1 rows "Cache" and
//! "Memory controller").

use serde::{Deserialize, Serialize};

/// DRAM technology of the developer kit (Table 1, "DRAM size and type").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DramKind {
    /// DDR2-667 (Tegra 2 SECO Q7).
    Ddr2_667,
    /// DDR3L-1600 (Tegra 3 CARMA, Arndale).
    Ddr3L1600,
    /// DDR3-1133 (Dell Latitude E6420).
    Ddr3_1133,
}

/// Memory-controller model.
///
/// `peak_bw_gbs` follows Table 1 exactly; the *efficiency* fields are the
/// fractions of that peak attainable by STREAM-like code, calibrated to the
/// paper's §3.2 measurements: 62% (Tegra 2), 27% (Tegra 3), 52% (Exynos
/// 5250) and 57% (Core i7) for the multi-core case. The Tegra 3 outlier —
/// a much faster controller that sustains barely more than Tegra 2's — is
/// the paper's own observation, carried here as a low efficiency factor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Number of memory channels.
    pub channels: u32,
    /// Channel width in bits.
    pub width_bits: u32,
    /// Maximum controller frequency in MHz (DDR data rate is 2×).
    pub freq_mhz: f64,
    /// Peak theoretical bandwidth in GB/s (Table 1).
    pub peak_bw_gbs: f64,
    /// Fraction of peak sustained by one core running STREAM.
    pub stream_eff_single: f64,
    /// Fraction of peak sustained by all cores running STREAM.
    pub stream_eff_multi: f64,
    /// Fraction of peak attained by *untuned* kernel code on one core at the
    /// SoC's reference frequency (distinct from STREAM: ordinary compiled
    /// loops don't hit the prefetcher sweet spot).
    pub kernel_eff_single: f64,
    /// Same, all cores.
    pub kernel_eff_multi: f64,
    /// Loaded DRAM access latency in nanoseconds.
    pub latency_ns: f64,
    /// DRAM kind on the evaluated developer kit.
    pub dram: DramKind,
    /// DRAM capacity in GiB on the evaluated developer kit.
    pub dram_gib: f64,
}

impl MemoryModel {
    /// Peak bandwidth in bytes/second.
    #[inline]
    pub fn peak_bw_bytes(&self) -> f64 {
        self.peak_bw_gbs * 1e9
    }

    /// Sustained STREAM bandwidth (bytes/s) for `cores` active cores.
    ///
    /// Single-core STREAM on these platforms is concurrency-limited (MSHRs ×
    /// line / latency), which is why it falls short of the multi-core figure;
    /// we interpolate between the calibrated endpoints with a saturating
    /// curve: each extra core adds a diminishing share of the remaining gap.
    pub fn stream_bw_bytes(&self, cores: u32, total_cores: u32) -> f64 {
        let eff =
            self.efficiency_at(cores, total_cores, self.stream_eff_single, self.stream_eff_multi);
        self.peak_bw_bytes() * eff
    }

    /// Sustained bandwidth (bytes/s) for untuned kernel code on `cores` cores.
    pub fn kernel_bw_bytes(&self, cores: u32, total_cores: u32) -> f64 {
        let eff =
            self.efficiency_at(cores, total_cores, self.kernel_eff_single, self.kernel_eff_multi);
        self.peak_bw_bytes() * eff
    }

    fn efficiency_at(&self, cores: u32, total_cores: u32, single: f64, multi: f64) -> f64 {
        let cores = cores.clamp(1, total_cores.max(1));
        if cores == 1 || total_cores <= 1 {
            return single;
        }
        // Saturating interpolation: fraction of the single->multi gap closed
        // by `cores` of `total_cores`, with strong diminishing returns
        // (bandwidth saturates well before all cores are used).
        let x = (cores - 1) as f64 / (total_cores - 1) as f64;
        let closed = 1.0 - (1.0 - x).powi(2);
        single + (multi - single) * (0.6 + 0.4 * closed)
    }
}

/// Cache hierarchy (Table 1, "Cache" rows). Sizes in KiB.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheModel {
    /// L1 instruction cache per core, KiB.
    pub l1i_kib: u32,
    /// L1 data cache per core, KiB.
    pub l1d_kib: u32,
    /// L2 size in KiB.
    pub l2_kib: u32,
    /// Whether L2 is shared between cores (true for the ARM SoCs) or private
    /// per core (Sandy Bridge).
    pub l2_shared: bool,
    /// Optional shared L3 size in KiB (Sandy Bridge only).
    pub l3_kib: Option<u32>,
    /// Cache line size in bytes (64 on all evaluated platforms).
    pub line_bytes: u32,
}

impl CacheModel {
    /// Total last-level capacity visible to one core, in bytes (used to
    /// decide whether a working set spills to DRAM).
    pub fn llc_bytes(&self) -> u64 {
        let last = self.l3_kib.unwrap_or(self.l2_kib);
        last as u64 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MemoryModel {
        MemoryModel {
            channels: 1,
            width_bits: 32,
            freq_mhz: 333.0,
            peak_bw_gbs: 2.6,
            stream_eff_single: 0.55,
            stream_eff_multi: 0.62,
            kernel_eff_single: 0.55,
            kernel_eff_multi: 0.60,
            latency_ns: 110.0,
            dram: DramKind::Ddr2_667,
            dram_gib: 1.0,
        }
    }

    #[test]
    fn stream_bw_endpoints_match_calibration() {
        let m = model();
        let single = m.stream_bw_bytes(1, 2);
        let multi = m.stream_bw_bytes(2, 2);
        assert!((single - 2.6e9 * 0.55).abs() < 1e3);
        assert!((multi - 2.6e9 * 0.62).abs() < 1e3);
    }

    #[test]
    fn bw_is_monotonic_in_cores() {
        let mut m = model();
        m.stream_eff_multi = 0.8;
        let mut prev = 0.0;
        for c in 1..=4 {
            let bw = m.stream_bw_bytes(c, 4);
            assert!(bw >= prev, "core {c}: {bw} < {prev}");
            prev = bw;
        }
    }

    #[test]
    fn requesting_more_cores_than_exist_clamps() {
        let m = model();
        assert_eq!(m.stream_bw_bytes(8, 2), m.stream_bw_bytes(2, 2));
    }

    #[test]
    fn llc_prefers_l3() {
        let c = CacheModel {
            l1i_kib: 32,
            l1d_kib: 32,
            l2_kib: 256,
            l2_shared: false,
            l3_kib: Some(6144),
            line_bytes: 64,
        };
        assert_eq!(c.llc_bytes(), 6144 * 1024);
        let c2 = CacheModel { l3_kib: None, ..c };
        assert_eq!(c2.llc_bytes(), 256 * 1024);
    }
}
