//! Calibration targets: the paper's measured numbers that the models in this
//! crate are fitted to, collected in one place so tests (here and in the
//! `kernels` crate) can assert that the *emergent* model outputs land inside
//! tolerance bands around the published measurements.
//!
//! Nothing in this module feeds back into the models — it is a read-only
//! record of ground truth. The free parameters being fitted are the
//! per-pattern issue efficiencies (`uarch.rs`), the kernel/STREAM bandwidth
//! efficiencies (`platform.rs`), and the stall-serialisation and
//! bandwidth-frequency exponents (`uarch.rs`).

/// A named target value from the paper with a relative tolerance.
#[derive(Clone, Copy, Debug)]
pub struct Target {
    /// What the paper reports.
    pub name: &'static str,
    /// The published value.
    pub value: f64,
    /// Acceptable relative deviation of the model (e.g. 0.15 = ±15%).
    pub rel_tol: f64,
}

impl Target {
    /// Whether `measured` is inside the tolerance band.
    pub fn check(&self, measured: f64) -> bool {
        (measured - self.value).abs() <= self.rel_tol * self.value.abs()
    }

    /// Relative error of `measured` against the target.
    pub fn rel_err(&self, measured: f64) -> f64 {
        (measured - self.value) / self.value
    }
}

/// §3.1.1, Fig 3(a): single-core suite-average speedups at 1 GHz,
/// relative to Tegra 2 @ 1 GHz.
pub mod single_core_1ghz {
    use super::Target;
    /// Tegra 3 vs Tegra 2 at 1 GHz: "+9% improvement in execution time".
    pub const TEGRA3_VS_TEGRA2: Target =
        Target { name: "T3/T2 @1GHz serial", value: 1.09, rel_tol: 0.06 };
    /// Arndale vs Tegra 2 at 1 GHz: "30% improvement".
    pub const EXYNOS_VS_TEGRA2: Target =
        Target { name: "Exynos/T2 @1GHz serial", value: 1.30, rel_tol: 0.08 };
    /// Arndale vs Tegra 3 at 1 GHz: "22%".
    pub const EXYNOS_VS_TEGRA3: Target =
        Target { name: "Exynos/T3 @1GHz serial", value: 1.22, rel_tol: 0.08 };
    /// "Compared with the Intel Core i7 CPU, the Arndale platform is just two
    /// times slower" (same-frequency comparison).
    pub const I7_VS_EXYNOS: Target =
        Target { name: "i7/Exynos @1GHz serial", value: 2.0, rel_tol: 0.12 };
}

/// §3.1.1, Fig 3(a): single-core speedups at each platform's maximum
/// frequency, relative to Tegra 2 @ 1 GHz.
pub mod single_core_fmax {
    use super::Target;
    /// "the Tegra 3 platform is 1.36 times faster than the Tegra 2".
    pub const TEGRA3_VS_TEGRA2: Target =
        Target { name: "T3@1.3/T2@1.0 serial", value: 1.36, rel_tol: 0.08 };
    /// "it is 2.3 times faster than Tegra 2".
    pub const EXYNOS_VS_TEGRA2: Target =
        Target { name: "Exynos@1.7/T2@1.0 serial", value: 2.3, rel_tol: 0.10 };
    /// "The Intel core at its maximum frequency is 3 times faster than the
    /// Arndale platform."
    pub const I7_VS_EXYNOS: Target =
        Target { name: "i7@2.4/Exynos@1.7 serial", value: 3.0, rel_tol: 0.12 };
    /// "From the situation when Tegra 2 was 6.5 times slower…"
    pub const I7_VS_TEGRA2: Target =
        Target { name: "i7@2.4/T2@1.0 serial", value: 6.5, rel_tol: 0.12 };
}

/// §3.1.1: per-iteration energy-to-solution at 1 GHz, single core, Joules.
pub mod energy_1ghz {
    use super::Target;
    /// "the Tegra 2 platform at 1GHz consumes 23.93 Joules".
    pub const TEGRA2_J: Target = Target { name: "T2 @1GHz J/iter", value: 23.93, rel_tol: 0.08 };
    /// "Tegra 3 consumes 19.62J".
    pub const TEGRA3_J: Target = Target { name: "T3 @1GHz J/iter", value: 19.62, rel_tol: 0.08 };
    /// "Arndale consumes 16.95J".
    pub const EXYNOS_J: Target =
        Target { name: "Exynos @1GHz J/iter", value: 16.95, rel_tol: 0.08 };
    /// "The Intel platform, meanwhile, consumes 28.57J".
    pub const I7_J: Target = Target { name: "i7 @1GHz J/iter", value: 28.57, rel_tol: 0.08 };
    /// "it requires 1.4 times less energy" (Tegra 3 at fmax vs Tegra 2 at fmax).
    pub const TEGRA3_FMAX_GAIN: Target =
        Target { name: "T2@1.0 J / T3@1.3 J", value: 1.4, rel_tol: 0.12 };
}

/// §3.1.2, Fig 4: multi-core (OpenMP) energy improvement over serial.
pub mod multicore_energy_gain {
    use super::Target;
    /// "In case of Tegra 2 and Tegra 3 platforms, the OpenMP version uses 1.7
    /// times less energy per iteration."
    pub const TEGRA2: Target = Target { name: "T2 E_serial/E_omp", value: 1.7, rel_tol: 0.15 };
    /// Same statement covers Tegra 3.
    pub const TEGRA3: Target = Target { name: "T3 E_serial/E_omp", value: 1.7, rel_tol: 0.15 };
    /// "Arndale shows better improvement (2.25 times)".
    pub const EXYNOS: Target = Target { name: "Exynos E_serial/E_omp", value: 2.25, rel_tol: 0.15 };
    /// "the Intel platform reduces energy to solution 2.5 times".
    pub const I7: Target = Target { name: "i7 E_serial/E_omp", value: 2.5, rel_tol: 0.15 };
}

/// §3.2, Fig 5: STREAM multi-core efficiency (fraction of Table-1 peak).
pub mod stream_efficiency {
    use super::Target;
    /// "an efficiency of 62% (Tegra 2)".
    pub const TEGRA2: Target = Target { name: "T2 STREAM eff", value: 0.62, rel_tol: 0.05 };
    /// "27% (Tegra 3)".
    pub const TEGRA3: Target = Target { name: "T3 STREAM eff", value: 0.27, rel_tol: 0.05 };
    /// "52% (Exynos 5250)".
    pub const EXYNOS: Target = Target { name: "Exynos STREAM eff", value: 0.52, rel_tol: 0.05 };
    /// "57% (Intel Core i7-2760QM)".
    pub const I7: Target = Target { name: "i7 STREAM eff", value: 0.57, rel_tol: 0.05 };
    /// "a significant improvement in memory bandwidth, of about 4.5 times,
    /// between the Tegra platforms and the Samsung Exynos 5250".
    pub const EXYNOS_OVER_TEGRA: Target =
        Target { name: "Exynos/Tegra STREAM BW", value: 4.5, rel_tol: 0.15 };
}

/// §4, §4.1: cluster-level headline numbers.
pub mod cluster {
    use super::Target;
    /// "achieving a total 97 GFLOPS on 96 nodes".
    pub const HPL_96N_GFLOPS: Target =
        Target { name: "HPL 96-node GFLOPS", value: 97.0, rel_tol: 0.10 };
    /// "an efficiency of 51%".
    pub const HPL_96N_EFF: Target = Target { name: "HPL 96-node eff", value: 0.51, rel_tol: 0.10 };
    /// "an energy efficiency of 120 MFLOPS/W".
    pub const GREEN500_MFLOPS_W: Target =
        Target { name: "Tibidabo MFLOPS/W", value: 120.0, rel_tol: 0.15 };
    /// Tegra 2 TCP/IP ping-pong latency, "around 100 µs".
    pub const TEGRA2_TCP_LAT_US: Target =
        Target { name: "T2 TCP latency us", value: 100.0, rel_tol: 0.10 };
    /// "When Open-MX is used, the latency drops to 65 µs."
    pub const TEGRA2_OMX_LAT_US: Target =
        Target { name: "T2 OMX latency us", value: 65.0, rel_tol: 0.10 };
    /// Exynos 5 at 1 GHz: "on the order of 125 µs with TCP/IP".
    pub const EXYNOS_TCP_LAT_US: Target =
        Target { name: "Exynos TCP latency us @1GHz", value: 125.0, rel_tol: 0.10 };
    /// "and 93 µs when Open-MX is used".
    pub const EXYNOS_OMX_LAT_US: Target =
        Target { name: "Exynos OMX latency us @1GHz", value: 93.0, rel_tol: 0.10 };
    /// "latencies are reduced by 10%" at 1.4 GHz (qualitative statement —
    /// wide band).
    pub const EXYNOS_LAT_GAIN_1P4: Target =
        Target { name: "Exynos latency reduction @1.4GHz", value: 0.10, rel_tol: 0.6 };
    /// "Tegra 2 can achieve 65 MB/s" with TCP/IP.
    pub const TEGRA2_TCP_BW_MBS: Target =
        Target { name: "T2 TCP bandwidth MB/s", value: 65.0, rel_tol: 0.10 };
    /// "reaching 117 MB/s – 93% of the theoretical maximum".
    pub const TEGRA2_OMX_BW_MBS: Target =
        Target { name: "T2 OMX bandwidth MB/s", value: 117.0, rel_tol: 0.06 };
    /// "Exynos 5 can achieve 63 MB/s" with TCP/IP.
    pub const EXYNOS_TCP_BW_MBS: Target =
        Target { name: "Exynos TCP bandwidth MB/s", value: 63.0, rel_tol: 0.10 };
    /// "69 MB/s running at 1GHz" with Open-MX.
    pub const EXYNOS_OMX_BW_MBS: Target =
        Target { name: "Exynos OMX bandwidth MB/s @1GHz", value: 69.0, rel_tol: 0.10 };
    /// "75 MB/s running at 1.4GHz" with Open-MX.
    pub const EXYNOS_OMX_BW_MBS_1P4: Target =
        Target { name: "Exynos OMX bandwidth MB/s @1.4GHz", value: 75.0, rel_tol: 0.10 };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_check_inside_and_outside() {
        let t = Target { name: "x", value: 100.0, rel_tol: 0.10 };
        assert!(t.check(100.0));
        assert!(t.check(109.9));
        assert!(t.check(90.1));
        assert!(!t.check(111.0));
        assert!(!t.check(89.0));
    }

    #[test]
    fn rel_err_signs() {
        let t = Target { name: "x", value: 50.0, rel_tol: 0.1 };
        assert!(t.rel_err(55.0) > 0.0);
        assert!(t.rel_err(45.0) < 0.0);
        assert_eq!(t.rel_err(50.0), 0.0);
    }
}
