//! Work profiles: architecture-independent descriptions of what a kernel does.
//!
//! A [`WorkProfile`] is the contract between the `kernels` crate (which
//! produces profiles from real, instrumented implementations) and the timing
//! engine in this crate (which turns a profile into a per-platform execution
//! time). Keeping the profile architecture-independent is what lets the same
//! kernel be "run" on all four Table-1 platforms at every DVFS point.

use serde::{Deserialize, Serialize};

/// Dominant memory-access behaviour of a kernel (Table 2's "Properties"
/// column, abstracted into classes the timing model can act on).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Sequential, prefetch-friendly passes over large arrays (vecop, red,
    /// STREAM).
    Streaming,
    /// High data reuse in cache (blocked dmmm, 2dcon).
    LocalityRich,
    /// Constant non-unit stride (3dstc, fft's long strides).
    Strided,
    /// Data-dependent, hard-to-prefetch accesses (nbody neighbour loads,
    /// spvm column gathers, hist bins).
    Irregular,
    /// Negligible memory traffic; FP pipeline bound (amcd).
    ComputeBound,
}

impl AccessPattern {
    /// All patterns, for exhaustive iteration in tests and tables.
    pub const ALL: [AccessPattern; 5] = [
        AccessPattern::Streaming,
        AccessPattern::LocalityRich,
        AccessPattern::Strided,
        AccessPattern::Irregular,
        AccessPattern::ComputeBound,
    ];

    /// Fraction of peak DRAM bandwidth this pattern can exploit, relative to
    /// a pure streaming pattern (applied on top of the platform's measured
    /// streaming efficiency).
    pub fn bandwidth_factor(self) -> f64 {
        match self {
            AccessPattern::Streaming => 1.0,
            AccessPattern::LocalityRich => 0.95,
            AccessPattern::Strided => 0.55,
            AccessPattern::Irregular => 0.35,
            AccessPattern::ComputeBound => 1.0,
        }
    }
}

/// Architecture-independent work description for one execution of a kernel
/// (or one phase of an application).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkProfile {
    /// Short identifier (e.g. `"dmmm"`).
    pub name: &'static str,
    /// FP64 operations performed (adds, muls; an FMA counts as 2).
    pub flops: f64,
    /// Bytes moved to/from DRAM (i.e. traffic past the last-level cache).
    pub dram_bytes: f64,
    /// Dominant access pattern.
    pub pattern: AccessPattern,
    /// Amdahl parallel fraction of the work (1.0 = perfectly parallel).
    pub parallel_fraction: f64,
    /// Multiplier on per-thread work when running on `n` threads, modelling
    /// load imbalance: effective parallel work per thread is
    /// `work/n * (1 + imbalance)`. 0.0 = perfectly balanced.
    pub imbalance: f64,
}

impl WorkProfile {
    /// A perfectly parallel, balanced profile; adjust fields as needed.
    pub fn new(name: &'static str, flops: f64, dram_bytes: f64, pattern: AccessPattern) -> Self {
        WorkProfile { name, flops, dram_bytes, pattern, parallel_fraction: 1.0, imbalance: 0.0 }
    }

    /// Builder-style: set the Amdahl parallel fraction.
    pub fn with_parallel_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "parallel fraction must be in [0,1]");
        self.parallel_fraction = f;
        self
    }

    /// Builder-style: set the load-imbalance factor.
    pub fn with_imbalance(mut self, i: f64) -> Self {
        assert!(i >= 0.0, "imbalance must be non-negative");
        self.imbalance = i;
        self
    }

    /// Arithmetic intensity in flops per DRAM byte (∞ for compute-only work).
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.dram_bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.dram_bytes
        }
    }

    /// Combine two profiles executed back to back (patterns must match for
    /// the result to stay meaningful; the dominant-by-bytes pattern wins).
    pub fn merge(&self, other: &WorkProfile) -> WorkProfile {
        let total_flops = self.flops + other.flops;
        let pattern =
            if self.dram_bytes >= other.dram_bytes { self.pattern } else { other.pattern };
        let pf = if total_flops > 0.0 {
            (self.parallel_fraction * self.flops + other.parallel_fraction * other.flops)
                / total_flops
        } else {
            1.0
        };
        WorkProfile {
            name: self.name,
            flops: total_flops,
            dram_bytes: self.dram_bytes + other.dram_bytes,
            pattern,
            parallel_fraction: pf,
            imbalance: self.imbalance.max(other.imbalance),
        }
    }

    /// Scale the amount of work (both flops and bytes) by a factor.
    pub fn scaled(&self, factor: f64) -> WorkProfile {
        WorkProfile {
            flops: self.flops * factor,
            dram_bytes: self.dram_bytes * factor,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_basic() {
        let w = WorkProfile::new("k", 100.0, 50.0, AccessPattern::Streaming);
        assert_eq!(w.arithmetic_intensity(), 2.0);
        let c = WorkProfile::new("c", 100.0, 0.0, AccessPattern::ComputeBound);
        assert!(c.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn merge_adds_work_and_weights_parallel_fraction() {
        let a = WorkProfile::new("a", 100.0, 10.0, AccessPattern::Streaming)
            .with_parallel_fraction(1.0);
        let b = WorkProfile::new("b", 300.0, 40.0, AccessPattern::Irregular)
            .with_parallel_fraction(0.5);
        let m = a.merge(&b);
        assert_eq!(m.flops, 400.0);
        assert_eq!(m.dram_bytes, 50.0);
        // b moves more bytes, so its pattern dominates.
        assert_eq!(m.pattern, AccessPattern::Irregular);
        // flop-weighted parallel fraction: (1*100 + 0.5*300)/400 = 0.625.
        assert!((m.parallel_fraction - 0.625).abs() < 1e-12);
    }

    #[test]
    fn scaled_scales_work_only() {
        let a = WorkProfile::new("a", 100.0, 10.0, AccessPattern::Strided)
            .with_parallel_fraction(0.9)
            .with_imbalance(0.2);
        let s = a.scaled(3.0);
        assert_eq!(s.flops, 300.0);
        assert_eq!(s.dram_bytes, 30.0);
        assert_eq!(s.parallel_fraction, 0.9);
        assert_eq!(s.imbalance, 0.2);
    }

    #[test]
    #[should_panic(expected = "parallel fraction")]
    fn parallel_fraction_validated() {
        let _ =
            WorkProfile::new("a", 1.0, 1.0, AccessPattern::Streaming).with_parallel_fraction(1.5);
    }

    #[test]
    fn bandwidth_factors_ordered_sensibly() {
        assert!(
            AccessPattern::Streaming.bandwidth_factor()
                >= AccessPattern::LocalityRich.bandwidth_factor()
        );
        assert!(
            AccessPattern::LocalityRich.bandwidth_factor()
                > AccessPattern::Strided.bandwidth_factor()
        );
        assert!(
            AccessPattern::Strided.bandwidth_factor() > AccessPattern::Irregular.bandwidth_factor()
        );
    }
}
