//! Microarchitecture models.
//!
//! The paper's single-node results (§3) are explained by a handful of
//! microarchitectural parameters: FP64 issue width and FMA pipelining
//! (Cortex-A9 issues one FMA every two cycles; Cortex-A15 has a fully
//! pipelined FMA; Sandy Bridge has 256-bit AVX), out-of-order depth, and the
//! number of outstanding cache misses. This module encodes those parameters
//! plus per-access-pattern *issue efficiencies* — the fraction of peak FP
//! throughput that compiled, out-of-the-box HPC kernels actually attain
//! (the paper compiles everything "without any tuning of the source code").

use serde::{Deserialize, Serialize};

use crate::work::AccessPattern;

/// CPU core microarchitecture families evaluated (or projected) in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Microarch {
    /// ARM Cortex-A9 (Tegra 2 / Tegra 3): dual-issue, shallow OoO, VFP FMA
    /// issuing every other cycle.
    CortexA9,
    /// ARM Cortex-A15 (Exynos 5250): triple-issue, deeper OoO, fully
    /// pipelined FMA, more outstanding misses, better prefetch.
    CortexA15,
    /// Intel Sandy Bridge (Core i7-2760QM): wide OoO with 256-bit AVX.
    SandyBridge,
    /// Projected ARMv8 core (paper §1/§3.1.2): Cortex-A15-class pipeline with
    /// FP64 in the NEON SIMD unit — double the FP64 throughput per cycle.
    ArmV8,
}

impl Microarch {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Microarch::CortexA9 => "Cortex-A9",
            Microarch::CortexA15 => "Cortex-A15",
            Microarch::SandyBridge => "Sandy Bridge",
            Microarch::ArmV8 => "ARMv8 (projected)",
        }
    }
}

/// A CPU core's performance parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoreModel {
    /// Microarchitecture family.
    pub uarch: Microarch,
    /// Peak FP64 floating-point operations per cycle per core.
    ///
    /// Cortex-A9: one FMA per 2 cycles = 1.0; Cortex-A15: one FMA per cycle
    /// = 2.0; Sandy Bridge: 4-wide AVX add + 4-wide AVX mul = 8.0; projected
    /// ARMv8: NEON FP64 FMA = 4.0 (paper: "double the FP-64 performance at
    /// the same frequency").
    pub fp64_flops_per_cycle: f64,
    /// Maximum simultaneously outstanding L2/DRAM misses (MSHR count); caps
    /// latency-bound memory throughput. A15 "improves the number of
    /// outstanding memory requests" over A9 [Turley 2010].
    pub max_outstanding_misses: u32,
    /// Relative scalar integer/control pipeline speed per GHz, normalised to
    /// Cortex-A9 = 1.0. Used for protocol-stack CPU costs (§4.1: interconnect
    /// software overhead scales with core speed).
    pub scalar_speed_per_ghz: f64,
    /// Fraction of the *non-overlapped* portion of memory stalls; 0.0 means
    /// compute and memory overlap perfectly (ideal roofline), 1.0 means they
    /// fully serialise. Deeper OoO ⇒ closer to 0.
    pub mem_stall_serialisation: f64,
    /// Exponent of attained-DRAM-bandwidth scaling with core frequency:
    /// `bw(f) = bw(1 GHz) · f^exp` (capped at the STREAM limit). In-order-ish
    /// cores are concurrency-limited, so their attained bandwidth tracks the
    /// core clock almost linearly; wide OoO cores saturate earlier.
    pub bw_freq_exp: f64,
}

impl CoreModel {
    /// Cortex-A9 as shipped in Tegra 2/3.
    pub fn cortex_a9() -> Self {
        CoreModel {
            uarch: Microarch::CortexA9,
            fp64_flops_per_cycle: 1.0,
            max_outstanding_misses: 4,
            scalar_speed_per_ghz: 1.0,
            mem_stall_serialisation: 0.45,
            bw_freq_exp: 0.97,
        }
    }

    /// Cortex-A15 as shipped in Exynos 5250.
    pub fn cortex_a15() -> Self {
        CoreModel {
            uarch: Microarch::CortexA15,
            fp64_flops_per_cycle: 2.0,
            max_outstanding_misses: 11,
            scalar_speed_per_ghz: 1.35,
            mem_stall_serialisation: 0.30,
            bw_freq_exp: 0.95,
        }
    }

    /// Sandy Bridge as shipped in the Core i7-2760QM.
    pub fn sandy_bridge() -> Self {
        CoreModel {
            uarch: Microarch::SandyBridge,
            fp64_flops_per_cycle: 8.0,
            max_outstanding_misses: 32,
            scalar_speed_per_ghz: 2.6,
            mem_stall_serialisation: 0.15,
            bw_freq_exp: 0.90,
        }
    }

    /// Projected ARMv8 core (paper §3.1.2: ARMv8 brings FP64 into NEON,
    /// "double the performance, while keeping the power of the core itself at
    /// almost the same level").
    pub fn armv8_projected() -> Self {
        CoreModel {
            uarch: Microarch::ArmV8,
            fp64_flops_per_cycle: 4.0,
            max_outstanding_misses: 12,
            scalar_speed_per_ghz: 1.45,
            mem_stall_serialisation: 0.28,
            bw_freq_exp: 0.93,
        }
    }

    /// Fraction of peak FP64 throughput attained by out-of-the-box compiled
    /// code with the given dominant access pattern.
    ///
    /// These factors are **calibrated** against the paper's measured averages
    /// (see `calib` module docs and the `calibration` tests): mobile cores
    /// attain a large fraction of their narrow peak, while Sandy Bridge's
    /// 8-flops/cycle AVX peak is mostly untapped by unvectorised builds —
    /// which is exactly why the paper's measured i7 advantage (~2.6× per GHz)
    /// is far below the 8× peak ratio.
    pub fn issue_efficiency(&self, pattern: AccessPattern) -> f64 {
        use AccessPattern::*;
        match self.uarch {
            Microarch::CortexA9 => match pattern {
                ComputeBound => 0.85,
                LocalityRich => 0.70,
                Streaming => 0.75,
                Strided => 0.55,
                Irregular => 0.35,
            },
            Microarch::CortexA15 => match pattern {
                ComputeBound => 0.55,
                LocalityRich => 0.45,
                Streaming => 0.49,
                Strided => 0.36,
                Irregular => 0.23,
            },
            Microarch::SandyBridge => match pattern {
                ComputeBound => 0.28,
                LocalityRich => 0.23,
                Streaming => 0.24,
                Strided => 0.18,
                Irregular => 0.115,
            },
            // ARMv8 projection: A15-like pipeline utilisation of a 2× wider
            // unit (slightly lower fractions: wider units are harder to fill).
            Microarch::ArmV8 => match pattern {
                ComputeBound => 0.50,
                LocalityRich => 0.40,
                Streaming => 0.44,
                Strided => 0.32,
                Irregular => 0.20,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_per_cycle_match_table1_derivation() {
        // Table 1: Tegra 2 = 2 cores @ 1.0 GHz = 2.0 GFLOPS -> 1 flop/cyc/core.
        assert_eq!(CoreModel::cortex_a9().fp64_flops_per_cycle, 1.0);
        // Exynos 5250 = 2 cores @ 1.7 GHz = 6.8 GFLOPS -> 2 flops/cyc/core.
        assert_eq!(CoreModel::cortex_a15().fp64_flops_per_cycle, 2.0);
        // i7-2760QM = 4 cores @ 2.4 GHz = 76.8 GFLOPS -> 8 flops/cyc/core.
        assert_eq!(CoreModel::sandy_bridge().fp64_flops_per_cycle, 8.0);
    }

    #[test]
    fn issue_efficiency_is_a_fraction() {
        for core in [
            CoreModel::cortex_a9(),
            CoreModel::cortex_a15(),
            CoreModel::sandy_bridge(),
            CoreModel::armv8_projected(),
        ] {
            for p in AccessPattern::ALL {
                let e = core.issue_efficiency(p);
                assert!(e > 0.0 && e <= 1.0, "{:?}/{:?} = {}", core.uarch, p, e);
            }
        }
    }

    #[test]
    fn compute_bound_is_best_pattern_for_every_core() {
        for core in [
            CoreModel::cortex_a9(),
            CoreModel::cortex_a15(),
            CoreModel::sandy_bridge(),
            CoreModel::armv8_projected(),
        ] {
            let cb = core.issue_efficiency(AccessPattern::ComputeBound);
            for p in AccessPattern::ALL {
                assert!(core.issue_efficiency(p) <= cb);
            }
        }
    }

    #[test]
    fn a15_beats_a9_per_cycle_on_every_pattern() {
        let a9 = CoreModel::cortex_a9();
        let a15 = CoreModel::cortex_a15();
        for p in AccessPattern::ALL {
            let f9 = a9.fp64_flops_per_cycle * a9.issue_efficiency(p);
            let f15 = a15.fp64_flops_per_cycle * a15.issue_efficiency(p);
            assert!(f15 > f9, "pattern {p:?}: A15 {f15} !> A9 {f9}");
        }
    }
}
