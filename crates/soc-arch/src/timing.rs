//! The roofline timing engine: work profile × platform × frequency → time.
//!
//! The model is an extended roofline:
//!
//! ```text
//! t = max(t_compute, t_memory) + s · min(t_compute, t_memory)
//! ```
//!
//! where `s` is the core's memory-stall serialisation factor (how far the
//! out-of-order engine is from perfectly overlapping compute with misses).
//! `t_compute` applies Amdahl's law over the thread count and the profile's
//! load-imbalance factor; `t_memory` uses the platform's *kernel-attained*
//! bandwidth, which scales with core frequency (concurrency-limited cores
//! issue misses faster at higher clocks) and is capped by the STREAM limit.

use serde::{Deserialize, Serialize};

use crate::platform::Soc;
use crate::work::WorkProfile;

/// Result of timing one work profile on one platform configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Compute-pipeline time, seconds (after Amdahl + imbalance).
    pub compute_s: f64,
    /// DRAM-traffic time, seconds.
    pub memory_s: f64,
    /// Modelled wall-clock seconds.
    pub total_s: f64,
    /// Attained GFLOPS (`flops / total`).
    pub attained_gflops: f64,
    /// Attained DRAM bandwidth in GB/s (`bytes / total`).
    pub attained_bw_gbs: f64,
}

/// Time `work` on `soc` at `f_ghz` using `threads` software threads.
///
/// `threads` is clamped to the SoC's hardware thread count. Passing
/// `threads = 1` gives the serial (single-core) time used for Fig 3;
/// `threads = soc.threads` gives the Fig 4 multi-core time.
pub fn kernel_time(soc: &Soc, f_ghz: f64, threads: u32, work: &WorkProfile) -> TimeBreakdown {
    assert!(f_ghz > 0.0, "frequency must be positive");
    assert!(threads >= 1, "at least one thread required");
    let threads = threads.min(soc.threads);
    let phys_cores = threads.min(soc.cores);

    // --- Compute time ---------------------------------------------------
    let issue = soc.core.issue_efficiency(work.pattern);
    let f1 = soc.core.fp64_flops_per_cycle * f_ghz * 1e9 * issue; // one core, flops/s
                                                                  // SMT: threads beyond the physical core count add fractional throughput.
    let smt_threads = threads.saturating_sub(soc.cores);
    let throughput_cores = phys_cores as f64 + smt_threads as f64 * soc.smt_yield;
    // Cache-sensitive patterns benefit from smaller per-core working sets in
    // the shared last-level cache when run multi-threaded.
    let cache_bonus = if threads > 1
        && matches!(
            work.pattern,
            crate::work::AccessPattern::LocalityRich
                | crate::work::AccessPattern::Strided
                | crate::work::AccessPattern::Irregular
        ) {
        soc.parallel_cache_bonus
    } else {
        1.0
    };
    let fn_ = f1 * throughput_cores * cache_bonus;
    let par = work.parallel_fraction;
    let imb = if threads > 1 { 1.0 + work.imbalance } else { 1.0 };
    let compute_s = work.flops * par * imb / fn_ + work.flops * (1.0 - par) / f1;

    // --- Memory time ----------------------------------------------------
    let memory_s = if work.dram_bytes > 0.0 {
        work.dram_bytes / attained_bw(soc, f_ghz, phys_cores, work)
    } else {
        0.0
    };

    // --- Combination ----------------------------------------------------
    let s = soc.core.mem_stall_serialisation;
    let total_s = compute_s.max(memory_s) + s * compute_s.min(memory_s);
    TimeBreakdown {
        compute_s,
        memory_s,
        total_s,
        attained_gflops: if total_s > 0.0 { work.flops / total_s / 1e9 } else { 0.0 },
        attained_bw_gbs: if total_s > 0.0 { work.dram_bytes / total_s / 1e9 } else { 0.0 },
    }
}

/// Kernel-attained DRAM bandwidth (bytes/s) for this pattern, core count and
/// frequency. The platform's `kernel_eff_*` factors are defined at the 1 GHz
/// reference; frequency scaling follows `f^bw_freq_exp`, capped at the
/// platform's multi-core STREAM limit (nothing beats tuned STREAM).
pub fn attained_bw(soc: &Soc, f_ghz: f64, cores: u32, work: &WorkProfile) -> f64 {
    let base = soc.mem.kernel_bw_bytes(cores, soc.cores) * work.pattern.bandwidth_factor();
    let scaled = base * f_ghz.powf(soc.core.bw_freq_exp);
    let cap = soc.mem.peak_bw_bytes() * soc.mem.stream_eff_multi;
    scaled.min(cap)
}

/// Convenience: total modelled time for a whole suite of profiles run back
/// to back (one "iteration" of the paper's §3.1 measurement loop).
/// Evaluations go through the memoizing timing cache, so repeated suite
/// sweeps (Fig 3 vs Fig 4, repeated baselines) are computed once.
pub fn suite_time(soc: &Soc, f_ghz: f64, threads: u32, suite: &[WorkProfile]) -> f64 {
    let fp = crate::timing_cache::soc_fingerprint(soc);
    suite
        .iter()
        .map(|w| crate::timing_cache::cached_kernel_time_fp(fp, soc, f_ghz, threads, w).total_s)
        .sum()
}

/// Geometric-mean speedup of `soc` over a `(baseline, f_base)` configuration
/// across a suite, matching the paper's "averaged across all benchmarks"
/// presentation in Figs 3–4.
pub fn suite_speedup(
    soc: &Soc,
    f_ghz: f64,
    threads: u32,
    baseline: &Soc,
    f_base: f64,
    base_threads: u32,
    suite: &[WorkProfile],
) -> f64 {
    assert!(!suite.is_empty(), "empty suite");
    let fp = crate::timing_cache::soc_fingerprint(soc);
    let fp_base = crate::timing_cache::soc_fingerprint(baseline);
    let log_sum: f64 = suite
        .iter()
        .map(|w| {
            let t = crate::timing_cache::cached_kernel_time_fp(fp, soc, f_ghz, threads, w).total_s;
            let tb = crate::timing_cache::cached_kernel_time_fp(
                fp_base,
                baseline,
                f_base,
                base_threads,
                w,
            )
            .total_s;
            (tb / t).ln()
        })
        .sum();
    (log_sum / suite.len() as f64).exp()
}

/// Effective DGEMM rate (flops/s) for dense linear algebra on all cores —
/// the rate HPL's trailing-matrix updates run at. Uses the locality-rich
/// issue efficiency (natively compiled ATLAS, §5).
pub fn dgemm_rate(soc: &Soc, f_ghz: f64, cores: u32) -> f64 {
    let cores = cores.min(soc.cores).max(1);
    soc.core.fp64_flops_per_cycle
        * f_ghz
        * 1e9
        * soc.core.issue_efficiency(crate::work::AccessPattern::LocalityRich)
        * cores as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::work::AccessPattern;

    fn compute_profile() -> WorkProfile {
        WorkProfile::new("cb", 1e9, 0.0, AccessPattern::ComputeBound)
    }

    fn stream_profile() -> WorkProfile {
        WorkProfile::new("st", 1e7, 1e9, AccessPattern::Streaming)
    }

    #[test]
    fn compute_bound_time_matches_hand_calculation() {
        let soc = Platform::tegra2().soc;
        // 1e9 flops / (1 flop/cyc * 1e9 Hz * 0.85) = 1.176s, no memory term.
        let t = kernel_time(&soc, 1.0, 1, &compute_profile());
        assert!((t.total_s - 1.0 / 0.85).abs() < 1e-9, "{}", t.total_s);
        assert_eq!(t.memory_s, 0.0);
    }

    #[test]
    fn compute_bound_scales_linearly_with_frequency() {
        let soc = Platform::exynos5250().soc;
        let t1 = kernel_time(&soc, 0.85, 1, &compute_profile()).total_s;
        let t2 = kernel_time(&soc, 1.7, 1, &compute_profile()).total_s;
        assert!((t1 / t2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_time_positive_and_bw_capped() {
        let soc = Platform::core_i7_2760qm().soc;
        let t = kernel_time(&soc, 2.4, 4, &stream_profile());
        assert!(t.memory_s > 0.0);
        // Attained bandwidth can never exceed the STREAM multi-core limit.
        let cap = soc.mem.peak_bw_gbs * soc.mem.stream_eff_multi;
        assert!(t.attained_bw_gbs <= cap + 1e-9);
    }

    #[test]
    fn multicore_is_faster_than_serial() {
        for p in Platform::table1() {
            for w in [compute_profile(), stream_profile()] {
                let t1 = kernel_time(&p.soc, p.soc.fmax_ghz, 1, &w).total_s;
                let tn = kernel_time(&p.soc, p.soc.fmax_ghz, p.soc.threads, &w).total_s;
                assert!(tn < t1, "{}: {} !< {}", p.id, tn, t1);
            }
        }
    }

    #[test]
    fn amdahl_limits_serial_fraction() {
        let soc = Platform::core_i7_2760qm().soc;
        let w = compute_profile().with_parallel_fraction(0.5);
        let t1 = kernel_time(&soc, 2.4, 1, &w).total_s;
        let tn = kernel_time(&soc, 2.4, 8, &w).total_s;
        // With 50% serial work the speedup must stay below 2.
        assert!(t1 / tn < 2.0);
        assert!(t1 / tn > 1.4);
    }

    #[test]
    fn imbalance_slows_parallel_but_not_serial() {
        let soc = Platform::tegra3().soc;
        let w = stream_profile().with_imbalance(0.5);
        let w0 = stream_profile();
        assert_eq!(kernel_time(&soc, 1.3, 1, &w).total_s, kernel_time(&soc, 1.3, 1, &w0).total_s);
        assert!(kernel_time(&soc, 1.3, 4, &w).total_s > kernel_time(&soc, 1.3, 4, &w0).total_s);
    }

    #[test]
    fn smt_gives_bounded_extra_throughput() {
        let soc = Platform::core_i7_2760qm().soc;
        let w = compute_profile();
        let t4 = kernel_time(&soc, 2.4, 4, &w).total_s;
        let t8 = kernel_time(&soc, 2.4, 8, &w).total_s;
        let smt_gain = t4 / t8;
        assert!(smt_gain > 1.0 && smt_gain < 1.5, "HT gain {smt_gain}");
    }

    #[test]
    fn thread_count_clamps_to_hardware() {
        let soc = Platform::tegra2().soc;
        let w = compute_profile();
        assert_eq!(kernel_time(&soc, 1.0, 2, &w).total_s, kernel_time(&soc, 1.0, 64, &w).total_s);
    }

    #[test]
    fn suite_time_is_sum_of_kernels() {
        let soc = Platform::tegra2().soc;
        let suite = vec![compute_profile(), stream_profile()];
        let total = suite_time(&soc, 1.0, 1, &suite);
        let manual: f64 = suite.iter().map(|w| kernel_time(&soc, 1.0, 1, w).total_s).sum();
        assert_eq!(total, manual);
    }

    #[test]
    fn suite_speedup_of_baseline_is_one() {
        let soc = Platform::tegra2().soc;
        let suite = vec![compute_profile(), stream_profile()];
        let s = suite_speedup(&soc, 1.0, 1, &soc, 1.0, 1, &suite);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dgemm_rate_is_fraction_of_peak() {
        for p in Platform::table1() {
            let r = dgemm_rate(&p.soc, p.soc.fmax_ghz, p.soc.cores);
            let peak = p.soc.peak_gflops_max() * 1e9;
            assert!(r > 0.1 * peak && r < peak, "{}: {r} vs peak {peak}", p.id);
        }
    }

    #[test]
    fn attained_gflops_never_exceeds_peak() {
        for p in Platform::table1() {
            for &f in &p.soc.dvfs_ghz {
                for pat in AccessPattern::ALL {
                    let w = WorkProfile::new("w", 1e9, 2e8, pat);
                    let t = kernel_time(&p.soc, f, p.soc.threads, &w);
                    assert!(
                        t.attained_gflops <= p.soc.peak_gflops(f) + 1e-9,
                        "{} @{f} {pat:?}",
                        p.id
                    );
                }
            }
        }
    }
}
