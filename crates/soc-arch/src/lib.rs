//! # soc-arch — platform performance models for the SC'13 mobile-HPC study
//!
//! This crate models the four platforms of the paper's Table 1 — NVIDIA
//! Tegra 2 and Tegra 3, Samsung Exynos 5250, and the Intel Core i7-2760QM —
//! plus the paper's forward-looking ARMv8 projection, and provides the
//! roofline timing engine that turns an architecture-independent
//! [`WorkProfile`] into a per-platform, per-frequency execution time.
//!
//! The real hardware measured by the paper is unobtainable; the models here
//! are the substitution (see `DESIGN.md` at the repository root). Every free
//! parameter is calibrated against a published measurement recorded in
//! [`calib`], and the calibration is *validated* by tests that re-derive the
//! paper's headline ratios from the models.
//!
//! ```
//! use soc_arch::{kernel_time, Platform, WorkProfile, AccessPattern};
//!
//! let tegra2 = Platform::tegra2();
//! let work = WorkProfile::new("daxpy", 2.0e8, 2.4e9, AccessPattern::Streaming);
//! let t = kernel_time(&tegra2.soc, 1.0, 1, &work);
//! assert!(t.total_s > 0.0);
//! ```

#![warn(missing_docs)]

pub mod calib;
mod memory;
mod platform;
mod roofline;
mod timing;
mod timing_cache;
mod uarch;
mod work;

pub use memory::{CacheModel, DramKind, MemoryModel};
pub use platform::{NicAttach, Platform, Soc};
pub use roofline::{roofline, Roofline};
pub use timing::{attained_bw, dgemm_rate, kernel_time, suite_speedup, suite_time, TimeBreakdown};
pub use timing_cache::{
    cache_counters, cached_kernel_time, cached_kernel_time_fp, soc_fingerprint, CacheCounters,
};
pub use uarch::{CoreModel, Microarch};
pub use work::{AccessPattern, WorkProfile};
