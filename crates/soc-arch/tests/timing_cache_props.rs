//! Property tests for the memoizing timing cache: over arbitrary
//! (platform, work profile, frequency, threads) triples, the cached path
//! must return bit-for-bit what the uncached model computes — hits and
//! misses alike — and fingerprints must key strictly on model inputs.

use proptest::prelude::*;
use soc_arch::{
    cached_kernel_time, kernel_time, soc_fingerprint, AccessPattern, Platform, WorkProfile,
};

fn arb_pattern(i: usize) -> AccessPattern {
    // Index into the model's closed pattern set.
    AccessPattern::ALL[i % AccessPattern::ALL.len()]
}

fn platform(i: usize) -> Platform {
    let all = Platform::table1();
    all[i % all.len()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache is transparent: for any modelled scenario, cached and
    /// uncached evaluations agree exactly, on first sight (miss) and on
    /// repeat (hit).
    #[test]
    fn cached_equals_uncached_over_arbitrary_cells(
        plat_i in 0usize..4,
        pat_i in 0usize..8,
        flops in 1e6f64..1e12,
        bytes in 0.0f64..1e12,
        par in 0.5f64..1.0,
        imb in 0.0f64..0.5,
        freq in 0.3f64..3.5,
        threads in 1u32..8,
    ) {
        let p = platform(plat_i);
        let work = WorkProfile::new("prop", flops, bytes, arb_pattern(pat_i))
            .with_parallel_fraction(par)
            .with_imbalance(imb);
        let direct = kernel_time(&p.soc, freq, threads, &work);
        let first = cached_kernel_time(&p.soc, freq, threads, &work);  // miss or hit
        let second = cached_kernel_time(&p.soc, freq, threads, &work); // guaranteed hit
        prop_assert_eq!(&direct, &first);
        prop_assert_eq!(&direct, &second);
        prop_assert!(direct.total_s.is_finite() && direct.total_s > 0.0);
    }

    /// Distinct platforms never share a fingerprint, and a platform's
    /// fingerprint is stable across recomputation (the cache key contract).
    #[test]
    fn fingerprints_are_stable_and_platform_unique(a in 0usize..4, b in 0usize..4) {
        let pa = platform(a);
        let pb = platform(b);
        let fa = soc_fingerprint(&pa.soc);
        prop_assert_eq!(fa, soc_fingerprint(&pa.soc));
        if a % 4 != b % 4 {
            prop_assert!(fa != soc_fingerprint(&pb.soc), "platforms alias in the cache");
        }
    }
}
