//! Quick check of the §4 HPL headline numbers on the Tibidabo model.
use cluster::{green500, Machine};
use hpc_apps::hpl::HplConfig;

fn main() {
    let m = Machine::tibidabo();
    for nodes in [4u32, 16, 96] {
        let cfg = HplConfig::tibidabo_weak(nodes);
        let spec = m.job(nodes);
        let t0 = std::time::Instant::now();
        let run = simmpi::run_mpi(spec, move |mut r| async move {
            let s = r.now();
            hpc_apps::hpl::hpl_rank(&mut r, &cfg).await;
            (r.now() - s).as_secs_f64()
        })
        .unwrap();
        let secs = run.results.iter().cloned().fold(0.0, f64::max);
        let gf = cfg.flops() / secs / 1e9;
        let peak = m.peak_gflops(nodes);
        let g500 = green500(&m, &run, nodes, 1.0, gf);
        println!("nodes={nodes:3} N={:6} t={secs:8.1}s GF={gf:7.2} eff={:.3} {:6.1} MFLOPS/W  ({:?} wall)",
            cfg.n, gf/peak, g500.mflops_per_watt, t0.elapsed());
    }
}
