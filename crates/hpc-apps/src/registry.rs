//! Table 3: the applications used for the scalability evaluation.

use serde::{Deserialize, Serialize};

/// Application identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AppId {
    /// High-Performance LINPACK.
    Hpl,
    /// PEPC — tree code for the N-body problem.
    Pepc,
    /// HYDRO — 2D Eulerian hydrodynamics.
    Hydro,
    /// GROMACS — molecular dynamics.
    Gromacs,
    /// SPECFEM3D — seismic wave propagation.
    Specfem3d,
}

/// One row of Table 3.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AppSpec {
    /// Identifier.
    pub id: AppId,
    /// Table 3 "Application".
    pub name: &'static str,
    /// Table 3 "Description".
    pub description: &'static str,
    /// Whether Fig 6 runs it under weak (true) or strong (false) scaling
    /// ("Following common practice, we perform a weak scalability test for
    /// HPL and a strong scalability test for the rest").
    pub weak_scaling: bool,
    /// Smallest node count the reference input fits on (PEPC "requires at
    /// least 24 nodes"; GROMACS "fits in the memory of two nodes").
    pub min_nodes: u32,
}

/// Table 3, in paper order.
pub fn table3() -> Vec<AppSpec> {
    vec![
        AppSpec {
            id: AppId::Hpl,
            name: "HPL",
            description: "High-Performance LINPACK",
            weak_scaling: true,
            min_nodes: 1,
        },
        AppSpec {
            id: AppId::Pepc,
            name: "PEPC",
            description: "Tree code for N-body problem",
            weak_scaling: false,
            min_nodes: 24,
        },
        AppSpec {
            id: AppId::Hydro,
            name: "HYDRO",
            description: "2D Eulerian code for hydrodynamics",
            weak_scaling: false,
            min_nodes: 1,
        },
        AppSpec {
            id: AppId::Gromacs,
            name: "GROMACS",
            description: "Molecular dynamics",
            weak_scaling: false,
            min_nodes: 2,
        },
        AppSpec {
            id: AppId::Specfem3d,
            name: "SPECFEM3D",
            description: "3D seismic wave propagation (spectral element method)",
            weak_scaling: false,
            min_nodes: 1,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let t = table3();
        assert_eq!(t.len(), 5);
        assert!(t[0].weak_scaling, "HPL is the weak-scaling test");
        assert!(t[1..].iter().all(|a| !a.weak_scaling));
        assert_eq!(t[1].min_nodes, 24); // PEPC reference input
        assert_eq!(t[3].min_nodes, 2); // GROMACS input fits two nodes
    }
}
