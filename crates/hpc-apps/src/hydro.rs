//! HYDRO (Table 3): "2D Eulerian code for hydrodynamics based on the RAMSES
//! code". Implemented as a real 2-D finite-volume shallow-water solver
//! (Lax–Friedrichs fluxes) on a strip decomposition with one-row halo
//! exchanges — the same communication structure (nearest-neighbour halos,
//! surface-to-volume comm ratio) that shapes HYDRO's strong scaling in
//! Fig 6.

use simmpi::{JobSpec, Msg, Rank, ReduceOp};
use soc_arch::{AccessPattern, WorkProfile};

use crate::mode::Mode;

/// Shallow-water state on one strip: height `h` and momenta `hu`, `hv`,
/// stored row-major with one halo row above and below.
struct Strip {
    nx: usize,
    rows: usize, // interior rows
    h: Vec<f64>,
    hu: Vec<f64>,
    hv: Vec<f64>,
}

/// HYDRO configuration.
#[derive(Clone, Copy, Debug)]
pub struct HydroConfig {
    /// Global grid width.
    pub nx: usize,
    /// Global grid height (split across ranks).
    pub ny: usize,
    /// Time steps.
    pub steps: usize,
    /// CFL-safe time step.
    pub dt: f64,
    /// Grid spacing.
    pub dx: f64,
    /// Execution mode.
    pub mode: Mode,
}

impl HydroConfig {
    /// Small Execute-mode problem for tests.
    pub fn small() -> HydroConfig {
        HydroConfig { nx: 32, ny: 32, steps: 10, dt: 0.002, dx: 0.1, mode: Mode::Execute }
    }

    /// The Fig 6 strong-scaling input (Model mode): a grid that fits one
    /// node's memory, iterated for a fixed number of steps.
    pub fn fig6() -> HydroConfig {
        HydroConfig { nx: 2048, ny: 2048, steps: 20, dt: 0.001, dx: 0.1, mode: Mode::Model }
    }

    /// Per-step, per-rank work profile for `rows` interior rows.
    fn step_profile(&self, rows: usize) -> WorkProfile {
        let cells = (rows * self.nx) as f64;
        // ~70 flops per cell per step (fluxes in two directions, update).
        WorkProfile::new("hydro-step", 70.0 * cells, 6.0 * 8.0 * cells, AccessPattern::Streaming)
    }
}

const G: f64 = 9.81;

impl Strip {
    fn idx(&self, row: usize, col: usize) -> usize {
        row * self.nx + col
    }

    /// Initialise rows `[row0, row0+rows)` of the global dam-break problem:
    /// a central column of raised fluid.
    fn init(cfg: &HydroConfig, row0: usize, rows: usize) -> Strip {
        let nx = cfg.nx;
        let total = (rows + 2) * nx;
        let mut s =
            Strip { nx, rows, h: vec![1.0; total], hu: vec![0.0; total], hv: vec![0.0; total] };
        for r in 0..rows {
            let gr = row0 + r;
            for c in 0..nx {
                let dy = gr as f64 - cfg.ny as f64 / 2.0;
                let dx = c as f64 - nx as f64 / 2.0;
                if dx * dx + dy * dy < (nx as f64 / 8.0).powi(2) {
                    let i = s.idx(r + 1, c);
                    s.h[i] = 2.0;
                }
            }
        }
        s
    }

    fn total_mass(&self) -> f64 {
        let mut m = 0.0;
        for r in 1..=self.rows {
            for c in 0..self.nx {
                m += self.h[self.idx(r, c)];
            }
        }
        m
    }
}

/// One Lax–Friedrichs step on the strip (halo rows must be current).
/// Reflective boundaries on the x edges; halo rows handle y.
fn lf_step(s: &mut Strip, dt: f64, dx: f64) {
    let nx = s.nx;
    let lam = dt / dx;
    let rows = s.rows;
    let n = (rows + 2) * nx;
    let mut nh = vec![0.0; n];
    let mut nhu = vec![0.0; n];
    let mut nhv = vec![0.0; n];

    let flux = |h: f64, hu: f64, hv: f64| -> ([f64; 3], [f64; 3]) {
        let u = hu / h;
        let v = hv / h;
        ([hu, hu * u + 0.5 * G * h * h, hu * v], [hv, hv * u, hv * v + 0.5 * G * h * h])
    };

    for r in 1..=rows {
        for c in 0..nx {
            let i = r * nx + c;
            let cl = if c == 0 { c } else { c - 1 };
            let cr = if c == nx - 1 { c } else { c + 1 };
            let (il, ir, iu, id) = (r * nx + cl, r * nx + cr, (r - 1) * nx + c, (r + 1) * nx + c);
            let (fx_l, _) = flux(s.h[il], s.hu[il], s.hv[il]);
            let (fx_r, _) = flux(s.h[ir], s.hu[ir], s.hv[ir]);
            let (_, fy_u) = flux(s.h[iu], s.hu[iu], s.hv[iu]);
            let (_, fy_d) = flux(s.h[id], s.hu[id], s.hv[id]);
            let avg_h = 0.25 * (s.h[il] + s.h[ir] + s.h[iu] + s.h[id]);
            let avg_hu = 0.25 * (s.hu[il] + s.hu[ir] + s.hu[iu] + s.hu[id]);
            let avg_hv = 0.25 * (s.hv[il] + s.hv[ir] + s.hv[iu] + s.hv[id]);
            nh[i] = avg_h - 0.5 * lam * ((fx_r[0] - fx_l[0]) + (fy_d[0] - fy_u[0]));
            nhu[i] = avg_hu - 0.5 * lam * ((fx_r[1] - fx_l[1]) + (fy_d[1] - fy_u[1]));
            nhv[i] = avg_hv - 0.5 * lam * ((fx_r[2] - fx_l[2]) + (fy_d[2] - fy_u[2]));
        }
    }
    s.h = nh;
    s.hu = nhu;
    s.hv = nhv;
}

/// Copy a row into a message payload (h, hu, hv concatenated).
fn pack_row(s: &Strip, row: usize) -> Msg {
    let nx = s.nx;
    let mut v = Vec::with_capacity(3 * nx);
    v.extend_from_slice(&s.h[row * nx..(row + 1) * nx]);
    v.extend_from_slice(&s.hu[row * nx..(row + 1) * nx]);
    v.extend_from_slice(&s.hv[row * nx..(row + 1) * nx]);
    Msg::from_f64s(&v)
}

fn unpack_row(s: &mut Strip, row: usize, msg: &Msg) {
    let nx = s.nx;
    let v = msg.to_f64s();
    s.h[row * nx..(row + 1) * nx].copy_from_slice(&v[..nx]);
    s.hu[row * nx..(row + 1) * nx].copy_from_slice(&v[nx..2 * nx]);
    s.hv[row * nx..(row + 1) * nx].copy_from_slice(&v[2 * nx..]);
}

fn mirror_row(s: &mut Strip, dst_row: usize, src_row: usize) {
    let nx = s.nx;
    for c in 0..nx {
        s.h[dst_row * nx + c] = s.h[src_row * nx + c];
        s.hu[dst_row * nx + c] = s.hu[src_row * nx + c];
        s.hv[dst_row * nx + c] = -s.hv[src_row * nx + c]; // reflect
    }
}

const TAG_UP: u32 = 1;
const TAG_DOWN: u32 = 2;

/// The per-rank HYDRO program; returns the local strip mass after the run
/// (Execute mode) or 0.0 (Model mode).
pub async fn hydro_rank(r: &mut Rank, cfg: &HydroConfig) -> f64 {
    let p = r.size() as usize;
    let me = r.rank() as usize;
    // Row distribution: near-equal strips.
    let base = cfg.ny / p;
    let extra = cfg.ny % p;
    let rows = base + usize::from(me < extra);
    let row0 = me * base + me.min(extra);
    let halo_bytes = (3 * cfg.nx * 8) as u64;

    let mut strip = if cfg.mode.carries_data() { Some(Strip::init(cfg, row0, rows)) } else { None };
    let profile = cfg.step_profile(rows);

    for _ in 0..cfg.steps {
        // --- Halo exchange ------------------------------------------------
        r.phase_begin("hydro.halo");
        let up = (me > 0).then(|| me as u32 - 1);
        let down = (me < p - 1).then(|| me as u32 + 1);
        // Send up / receive from down, then send down / receive from up.
        // Rank parity ordering keeps pairwise exchanges deadlock-free.
        for phase in 0..2 {
            let (target, tag_out, tag_in, my_edge_row, halo_row) = if phase == 0 {
                (up, TAG_UP, TAG_UP, 1, rows + 1)
            } else {
                (down, TAG_DOWN, TAG_DOWN, rows, 0)
            };
            let partner_for_recv = if phase == 0 { down } else { up };
            // Even ranks send first; odd ranks receive first. The two
            // halves run in rank-parity order to keep the pairwise
            // exchange deadlock-free.
            for half in 0..2 {
                let sending = (half == 0) == me.is_multiple_of(2);
                if sending {
                    if let Some(t) = target {
                        let msg = match &strip {
                            Some(strip) => pack_row(strip, my_edge_row),
                            None => Msg::size_only(halo_bytes),
                        };
                        r.send(t, tag_out, msg).await;
                    }
                } else if let Some(src) = partner_for_recv {
                    let m = r.recv(src, tag_in).await;
                    if let Some(strip) = &mut strip {
                        unpack_row(strip, halo_row, &m);
                    }
                }
            }
        }
        r.phase_end("hydro.halo");
        // Physical boundaries: mirror rows at the global top/bottom.
        if let Some(s) = &mut strip {
            if me == 0 {
                mirror_row(s, 0, 1);
            }
            if me == p - 1 {
                mirror_row(s, rows + 1, rows);
            }
        }

        // --- Step ----------------------------------------------------------
        r.phase_begin("hydro.step");
        match &mut strip {
            Some(s) => lf_step(s, cfg.dt, cfg.dx),
            None => r.compute(&profile).await,
        }
        r.phase_end("hydro.step");
    }
    strip.map_or(0.0, |s| s.total_mass())
}

/// Run HYDRO; returns `(elapsed_seconds, total_mass)`, or the fault that
/// stopped the run.
pub fn try_run_hydro(spec: JobSpec, cfg: HydroConfig) -> Result<(f64, f64), simmpi::MpiFault> {
    let run = simmpi::run_mpi(spec, move |mut r| async move {
        let t0 = r.now();
        let mass = hydro_rank(&mut r, &cfg).await;
        r.barrier().await;
        let dt = (r.now() - t0).as_secs_f64();
        let total = r.allreduce(ReduceOp::Sum, vec![mass]).await;
        (dt, total[0])
    })?;
    Ok((run.results.iter().map(|x| x.0).fold(0.0, f64::max), run.results[0].1))
}

/// [`try_run_hydro`] for callers on a clean spec.
pub fn run_hydro(spec: JobSpec, cfg: HydroConfig) -> (f64, f64) {
    try_run_hydro(spec, cfg).expect("HYDRO run failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_arch::Platform;

    fn spec(p: u32) -> JobSpec {
        JobSpec::new(Platform::tegra2(), p)
    }

    #[test]
    fn mass_is_conserved_single_rank() {
        let cfg = HydroConfig::small();
        let (_, mass) = run_hydro(spec(1), cfg);
        // Initial mass: 1.0 everywhere + 1.0 extra inside the disc.
        let (_, mass0) = run_hydro(spec(1), HydroConfig { steps: 0, ..cfg });
        assert!((mass - mass0).abs() / mass0 < 1e-9, "{mass} vs {mass0}");
    }

    #[test]
    fn decomposition_matches_single_rank_exactly() {
        let cfg = HydroConfig::small();
        let (_, m1) = run_hydro(spec(1), cfg);
        let (_, m4) = run_hydro(spec(4), cfg);
        assert!((m1 - m4).abs() < 1e-9, "{m1} vs {m4}");
    }

    #[test]
    fn wave_spreads_from_the_disc() {
        // After steps, some fluid must have moved: max height drops below
        // the initial 2.0 but stays above the ambient 1.0.
        let cfg = HydroConfig { steps: 30, ..HydroConfig::small() };
        let run = simmpi::run_mpi(spec(1), move |r| async move {
            let p = cfg;
            let mut s = Strip::init(&p, 0, p.ny);
            for _ in 0..p.steps {
                mirror_row(&mut s, 0, 1);
                mirror_row(&mut s, p.ny + 1, p.ny);
                lf_step(&mut s, p.dt, p.dx);
            }
            let hmax = s.h.iter().cloned().fold(0.0, f64::max);
            let _ = r;
            hmax
        })
        .unwrap();
        let hmax = run.results[0];
        assert!(hmax < 2.0 && hmax > 1.0, "hmax {hmax}");
    }

    #[test]
    fn model_mode_scales_with_ranks() {
        let cfg = HydroConfig { mode: Mode::Model, nx: 512, ny: 512, steps: 4, dt: 1e-3, dx: 0.1 };
        let (t2, _) = run_hydro(spec(2), cfg);
        let (t8, _) = run_hydro(spec(8), cfg);
        assert!(t8 < t2, "strong scaling: {t8} !< {t2}");
    }

    #[test]
    fn uneven_row_distribution_covers_grid() {
        // 32 rows over 5 ranks: 7,7,6,6,6.
        let cfg = HydroConfig::small();
        let (_, m5) = run_hydro(spec(5), cfg);
        let (_, m1) = run_hydro(spec(1), cfg);
        assert!((m5 - m1).abs() < 1e-9);
    }
}
