//! High-Performance Linpack (§4, Table 3): "solves a random dense linear
//! system of equations in double precision, and is widely known as the
//! single benchmark used in the TOP500 list."
//!
//! This is a real distributed LU factorisation with partial pivoting on a
//! 1-D block-column-cyclic layout: block column `j` lives on rank
//! `j mod P`. Each iteration factorises one panel on its owner, broadcasts
//! the factored panel and pivot rows, and updates the trailing matrix on all
//! ranks (triangular solve of the `U12` strip + rank-`nb` GEMM update).
//!
//! In Execute mode the whole factorisation runs on real data and the result
//! is verified with the standard HPL residual. In Model mode the identical
//! communication structure runs with size-only payloads and roofline-timed
//! compute — that is what reproduces the 96-node weak-scaling numbers
//! (97 GFLOPS, 51% efficiency).

use simmpi::{JobSpec, Msg, Rank, ReduceOp};
use soc_arch::{AccessPattern, WorkProfile};

use crate::mode::Mode;
use crate::resilience::{corrupt_block, CkptHooks, RankSnapshot};

/// HPL problem configuration.
#[derive(Clone, Copy, Debug)]
pub struct HplConfig {
    /// Matrix order.
    pub n: usize,
    /// Panel width (block size).
    pub nb: usize,
    /// Execution mode.
    pub mode: Mode,
}

impl HplConfig {
    /// A small Execute-mode problem for functional tests.
    pub fn small(n: usize, nb: usize) -> HplConfig {
        HplConfig { n, nb, mode: Mode::Execute }
    }

    /// A Model-mode problem sized for `nodes` Tibidabo nodes under weak
    /// scaling: the per-node share of the matrix uses ~60% of the node's
    /// 1 GiB (the usual HPL memory discipline).
    pub fn tibidabo_weak(nodes: u32) -> HplConfig {
        let per_node = 0.6 * 1.0e9 / 8.0; // elements per node
        let n = ((per_node * nodes as f64).sqrt() as usize) / 128 * 128;
        HplConfig { n, nb: 128, mode: Mode::Model }
    }

    fn nblocks(&self) -> usize {
        self.n.div_ceil(self.nb)
    }

    /// FP64 operation count of the factorisation + solve (HPL convention).
    pub fn flops(&self) -> f64 {
        let n = self.n as f64;
        2.0 / 3.0 * n * n * n + 2.0 * n * n
    }
}

/// Result of an HPL run.
#[derive(Clone, Copy, Debug)]
pub struct HplResult {
    /// Virtual wall-clock seconds of the factorisation (+ solve checks).
    pub seconds: f64,
    /// Sustained GFLOPS.
    pub gflops: f64,
    /// The scaled HPL residual, when Execute mode verified the solution
    /// (must be < 16 to pass, like the reference HPL).
    pub residual: Option<f64>,
}

/// Deterministic matrix entry generator (the "random dense linear system").
#[inline]
fn a_entry(n: usize, row: usize, col: usize) -> f64 {
    let mut x = (row * n + col) as u64;
    x = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0xDEADBEEF);
    x ^= x >> 29;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 32;
    let v = (x % 2_000_000) as f64 / 1_000_000.0 - 1.0;
    // Diagonal dominance keeps the test matrices comfortably non-singular
    // while pivoting still gets exercised by the off-diagonal noise.
    if row == col {
        v + 4.0
    } else {
        v
    }
}

/// Deterministic right-hand side.
#[inline]
fn b_entry(row: usize) -> f64 {
    ((row % 97) as f64) * 0.125 - 6.0
}

/// The per-rank HPL program. Returns the scaled residual on rank 0 in
/// Execute mode, `None` elsewhere.
pub async fn hpl_rank(r: &mut Rank, cfg: &HplConfig) -> Option<f64> {
    hpl_rank_ckpt(r, cfg, None).await
}

/// [`hpl_rank`] with optional coordinated-checkpoint hooks: resume from a
/// stored snapshot, write new snapshots every `hooks.every` panels, and
/// (Execute mode) apply scheduled DRAM bit-flips to live data. Used by
/// [`run_hpl_resilient`](crate::resilience::run_hpl_resilient).
pub async fn hpl_rank_ckpt(
    r: &mut Rank,
    cfg: &HplConfig,
    hooks: Option<&CkptHooks>,
) -> Option<f64> {
    let p = r.size() as usize;
    let me = r.rank() as usize;
    let n = cfg.n;
    let nb = cfg.nb;
    let nblk = cfg.nblocks();

    // Local block-columns (column-major n × nb each), Execute mode only.
    let mut blocks: Vec<Vec<f64>> = Vec::new();
    let mut block_global: Vec<usize> = Vec::new();
    for j in (me..nblk).step_by(p) {
        block_global.push(j);
        if cfg.mode.carries_data() {
            let mut data = vec![0.0; n * nb];
            for c in 0..nb {
                let col = j * nb + c;
                if col < n {
                    for row in 0..n {
                        data[c * n + row] = a_entry(n, row, col);
                    }
                }
            }
            blocks.push(data);
        }
    }
    let local_of = |j: usize| (j - me) / p;

    // Pivot history for verification: (column, chosen row) in order.
    let mut pivot_log: Vec<u64> = Vec::new();

    // Resuming from a checkpoint: load this rank's snapshot (matrix state
    // and pivot history as of panel `start_k`) instead of starting fresh.
    let start_k = hooks.map_or(0, |h| h.start_k);
    if let Some(h) = hooks {
        if h.start_k > 0 {
            let snap = h
                .store
                .lock()
                .unwrap()
                .load(h.start_k, me)
                .expect("resume requested without a complete checkpoint");
            if cfg.mode.carries_data() {
                blocks = snap.blocks;
            }
            pivot_log = snap.pivot_log;
        }
    }

    let t0 = r.now();
    for k in start_k..nblk {
        // Coordinated checkpoint: synchronise, write local state at the
        // node-local storage bandwidth, snapshot to stable storage.
        if let Some(h) = hooks {
            if h.every > 0 && k > start_k && k % h.every == 0 {
                r.phase_begin("hpl.checkpoint");
                r.barrier().await;
                let local_bytes = if cfg.mode.carries_data() {
                    blocks.iter().map(|b| b.len() * 8).sum::<usize>() as f64
                } else {
                    (block_global.len() * n * nb * 8) as f64
                };
                r.compute_secs(local_bytes / h.write_bw_bytes).await;
                h.store.lock().unwrap().save(
                    k,
                    me,
                    RankSnapshot { blocks: blocks.clone(), pivot_log: pivot_log.clone() },
                );
                r.phase_end("hpl.checkpoint");
            }
        }
        let owner = (k % p) as u32;
        let kb = k * nb;
        let width = nb.min(n - kb);
        let m = n - kb; // panel height
        let panel_bytes = (m * width * 8 + width * 8) as u64;

        let (piv, panel) = if me == owner as usize {
            // --- Panel factorisation on the owner -----------------------
            r.phase_begin("hpl.panel");
            let mut piv = vec![0u64; width];
            let mut panel_data: Option<Vec<f64>> = None;
            if cfg.mode.carries_data() {
                let blk = &mut blocks[local_of(k)];
                for c in 0..width {
                    let col = kb + c;
                    // Pivot search in column c, rows col..n.
                    let mut best = col;
                    let mut best_abs = blk[c * n + col].abs();
                    for row in col + 1..n {
                        let a = blk[c * n + row].abs();
                        if a > best_abs {
                            best_abs = a;
                            best = row;
                        }
                    }
                    piv[c] = best as u64;
                    if best != col {
                        for cc in 0..width {
                            blk.swap(cc * n + col, cc * n + best);
                        }
                    }
                    let pv = blk[c * n + col];
                    assert!(pv.abs() > 1e-300, "HPL: singular pivot at column {col}");
                    let inv = 1.0 / pv;
                    for row in col + 1..n {
                        blk[c * n + row] *= inv;
                    }
                    for cc in c + 1..width {
                        let mult = blk[cc * n + col];
                        if mult != 0.0 {
                            for row in col + 1..n {
                                blk[cc * n + row] -= blk[c * n + row] * mult;
                            }
                        }
                    }
                }
                // Pack rows kb..n of the factored panel.
                let mut packed = Vec::with_capacity(m * width);
                for c in 0..width {
                    packed.extend_from_slice(&blocks[local_of(k)][c * n + kb..c * n + n]);
                }
                panel_data = Some(packed);
            } else {
                // Model mode: synthetic pivots (identity) + panel cost.
                for (c, pv) in piv.iter_mut().enumerate() {
                    *pv = (kb + c) as u64;
                }
                let work = WorkProfile::new(
                    "hpl-panel",
                    (m * width * width) as f64,
                    (3 * m * width * 8) as f64,
                    AccessPattern::Streaming,
                )
                .with_parallel_fraction(0.9);
                r.compute(&work).await;
            }
            r.phase_end("hpl.panel");
            (piv, panel_data)
        } else {
            (Vec::new(), None)
        };

        // --- Broadcast pivots + panel (segmented ring, like HPL's
        // pipelined panel broadcast) ---------------------------------------
        let msg = if me == owner as usize {
            if cfg.mode.carries_data() {
                let mut v = Vec::with_capacity(width + panel.as_ref().unwrap().len());
                v.extend(piv.iter().map(|&x| x as f64));
                v.extend_from_slice(panel.as_ref().unwrap());
                Some(Msg::from_f64s(&v))
            } else {
                Some(Msg::size_only(panel_bytes))
            }
        } else {
            None
        };
        r.phase_begin("hpl.bcast");
        let received = r.bcast_pipelined(owner, msg, panel_bytes, 256 * 1024).await;
        r.phase_end("hpl.bcast");

        let (piv, panel_packed): (Vec<u64>, Vec<f64>) = if cfg.mode.carries_data() {
            let v = received.to_f64s();
            let piv: Vec<u64> = v[..width].iter().map(|&x| x as u64).collect();
            (piv, v[width..].to_vec())
        } else {
            ((kb..kb + width).map(|x| x as u64).collect(), Vec::new())
        };
        pivot_log.extend(&piv);

        // --- Apply row swaps + trailing update ---------------------------
        r.phase_begin("hpl.update");
        if cfg.mode.carries_data() {
            // Swaps apply to every local block except the panel itself
            // (already swapped during factorisation).
            for (li, &j) in block_global.iter().enumerate() {
                if j == k {
                    continue;
                }
                let blk = &mut blocks[li];
                for (c, &pv) in piv.iter().enumerate() {
                    let row = kb + c;
                    let pv = pv as usize;
                    if pv != row {
                        for cc in 0..nb {
                            blk.swap(cc * n + row, cc * n + pv);
                        }
                    }
                }
            }
            // Trailing blocks: U12 strip solve + GEMM update.
            let l = |row: usize, c: usize| panel_packed[c * m + (row - kb)];
            for (li, &j) in block_global.iter().enumerate() {
                if j <= k {
                    continue;
                }
                let blk = &mut blocks[li];
                let wj = nb.min(n - j * nb);
                for cc in 0..wj {
                    // Unit-lower triangular solve on rows kb..kb+width.
                    for c in 1..width {
                        let mut acc = blk[cc * n + kb + c];
                        for rr in 0..c {
                            acc -= l(kb + c, rr) * blk[cc * n + kb + rr];
                        }
                        blk[cc * n + kb + c] = acc;
                    }
                    // GEMM: rows kb+width..n.
                    for row in kb + width..n {
                        let mut acc = blk[cc * n + row];
                        for c in 0..width {
                            acc -= l(row, c) * blk[cc * n + kb + c];
                        }
                        blk[cc * n + row] = acc;
                    }
                }
            }
        } else {
            // Model mode: time the update on this rank's trailing blocks.
            let trailing: usize = block_global.iter().filter(|&&j| j > k).count();
            if trailing > 0 {
                let cols = trailing * nb;
                let m2 = n - kb - width;
                let flops =
                    2.0 * m2 as f64 * width as f64 * cols as f64 + (width * width * cols) as f64;
                let bytes = 4.0 * 8.0 * (m2 as f64 * cols as f64);
                let work =
                    WorkProfile::new("hpl-update", flops, bytes, AccessPattern::LocalityRich);
                r.compute(&work).await;
            }
        }
        r.phase_end("hpl.update");

        // Any DRAM bit-flip that struck this node during the panel corrupts
        // live matrix data; the end-of-run residual is the detector.
        if let Some(h) = hooks {
            if h.apply_bit_flips && cfg.mode.carries_data() {
                while let Some(at) = r.poll_bit_flip() {
                    corrupt_block(&mut blocks, &block_global, at, n, nb);
                }
            }
        }
    }

    // Synchronise before stopping the clock (every rank reports the same
    // factorisation span).
    r.barrier().await;
    let elapsed = (r.now() - t0).as_secs_f64();
    let _ = elapsed;

    // --- Verification (Execute mode): gather to rank 0 and solve ---------
    if cfg.mode.carries_data() {
        r.phase_begin("hpl.verify");
        let residual = verify(r, cfg, &blocks, &block_global, &pivot_log).await;
        r.phase_end("hpl.verify");
        residual
    } else {
        None
    }
}

/// Gather the factored matrix on rank 0, solve, and compute the scaled HPL
/// residual `||Ax-b||_inf / (eps * (||A||_inf ||x||_inf + ||b||_inf) * n)`.
async fn verify(
    r: &mut Rank,
    cfg: &HplConfig,
    blocks: &[Vec<f64>],
    block_global: &[usize],
    pivot_log: &[u64],
) -> Option<f64> {
    let n = cfg.n;
    let nb = cfg.nb;
    // Flatten local blocks into one payload: [global_index, data...] each.
    let mut flat = Vec::new();
    for (li, &j) in block_global.iter().enumerate() {
        flat.push(j as f64);
        flat.extend_from_slice(&blocks[li]);
    }
    let gathered = r.gather(0, Msg::from_f64s(&flat)).await;
    if r.rank() != 0 {
        return None;
    }
    // Reassemble the full factored matrix (column-major n×n).
    let mut lu = vec![0.0; n * n];
    for msg in gathered.unwrap() {
        let v = msg.to_f64s();
        let mut pos = 0;
        while pos < v.len() {
            let j = v[pos] as usize;
            pos += 1;
            let chunk = &v[pos..pos + n * nb];
            pos += n * nb;
            for c in 0..nb {
                let col = j * nb + c;
                if col < n {
                    lu[col * n..(col + 1) * n].copy_from_slice(&chunk[c * n..(c + 1) * n]);
                }
            }
        }
    }
    // Right-hand side with the pivot history applied in order.
    let mut b: Vec<f64> = (0..n).map(b_entry).collect();
    for (col, &pv) in pivot_log.iter().enumerate() {
        if col < n {
            b.swap(col, pv as usize);
        }
    }
    // Forward substitution (unit lower).
    for col in 0..n {
        let bi = b[col];
        if bi != 0.0 {
            for row in col + 1..n {
                b[row] -= lu[col * n + row] * bi;
            }
        }
    }
    // Back substitution (upper).
    for col in (0..n).rev() {
        b[col] /= lu[col * n + col];
        let bi = b[col];
        if bi != 0.0 {
            for row in 0..col {
                b[row] -= lu[col * n + row] * bi;
            }
        }
    }
    let x = b;
    // Residual against the original matrix.
    let mut r_inf: f64 = 0.0;
    let mut a_inf: f64 = 0.0;
    for row in 0..n {
        let mut acc = -b_entry(row);
        let mut arow: f64 = 0.0;
        for col in 0..n {
            let a = a_entry(n, row, col);
            acc += a * x[col];
            arow += a.abs();
        }
        r_inf = r_inf.max(acc.abs());
        a_inf = a_inf.max(arow);
    }
    let x_inf = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let b_inf = (0..n).map(b_entry).fold(0.0f64, |m, v| m.max(v.abs()));
    let eps = f64::EPSILON;
    Some(r_inf / (eps * (a_inf * x_inf + b_inf) * n as f64))
}

/// Run HPL on a job spec; returns the aggregate result, or the fault (node
/// crash, timeout, watchdog budget, engine failure) that stopped the run.
pub fn try_run_hpl(spec: JobSpec, cfg: HplConfig) -> Result<HplResult, simmpi::MpiFault> {
    let cfg_c = cfg;
    let run = simmpi::run_mpi(spec, move |mut r| async move {
        let t0 = r.now();
        let residual = hpl_rank(&mut r, &cfg_c).await;
        let dt = (r.now() - t0).as_secs_f64();
        // Propagate the factorisation time (max over ranks).
        let tmax = r.allreduce(ReduceOp::Max, vec![dt]).await;
        (tmax[0], residual)
    })?;
    let seconds = run.results[0].0;
    let residual = run.results[0].1;
    Ok(HplResult { seconds, gflops: cfg.flops() / seconds / 1e9, residual })
}

/// [`try_run_hpl`] for callers on a clean (fault-free, unbudgeted) spec,
/// where a failure is a programming error.
pub fn run_hpl(spec: JobSpec, cfg: HplConfig) -> HplResult {
    try_run_hpl(spec, cfg).expect("HPL run failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_arch::Platform;

    fn spec(p: u32) -> JobSpec {
        JobSpec::new(Platform::tegra2(), p)
    }

    #[test]
    fn single_rank_execute_solves_correctly() {
        let res = run_hpl(spec(1), HplConfig::small(32, 8));
        let r = res.residual.expect("rank 0 must verify");
        assert!(r < 16.0, "HPL residual {r}");
    }

    #[test]
    fn four_ranks_execute_solves_correctly() {
        let res = run_hpl(spec(4), HplConfig::small(64, 8));
        let r = res.residual.expect("rank 0 must verify");
        assert!(r < 16.0, "HPL residual {r}");
        assert!(res.gflops > 0.0);
    }

    #[test]
    fn uneven_blocks_and_ranks_still_solve() {
        // n not divisible by nb*p: exercises edge blocks.
        let res = run_hpl(spec(3), HplConfig::small(56, 8));
        assert!(res.residual.unwrap() < 16.0);
    }

    #[test]
    fn pivoting_is_actually_exercised() {
        // With random off-diagonal entries some pivots must differ from the
        // diagonal; the residual staying small proves the swap bookkeeping.
        let res = run_hpl(spec(2), HplConfig::small(48, 8));
        assert!(res.residual.unwrap() < 16.0);
    }

    #[test]
    fn model_mode_runs_and_reports_time() {
        let cfg = HplConfig { n: 512, nb: 64, mode: Mode::Model };
        let res = run_hpl(spec(4), cfg);
        assert!(res.seconds > 0.0);
        assert!(res.residual.is_none());
        assert!(res.gflops > 0.0);
    }

    #[test]
    fn model_mode_efficiency_is_plausible_fraction_of_peak() {
        let cfg = HplConfig { n: 1024, nb: 128, mode: Mode::Model };
        let res = run_hpl(spec(2), cfg);
        let peak = Platform::tegra2().soc.peak_gflops_max() * 2.0;
        let eff = res.gflops / peak;
        assert!(eff > 0.2 && eff < 0.8, "efficiency {eff}");
    }

    #[test]
    fn weak_scaling_config_grows_n_with_sqrt_nodes() {
        let n4 = HplConfig::tibidabo_weak(4).n;
        let n16 = HplConfig::tibidabo_weak(16).n;
        let ratio = n16 as f64 / n4 as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
        assert_eq!(n4 % 128, 0);
    }
}
