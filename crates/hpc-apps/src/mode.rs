//! Execute-vs-Model duality (DESIGN.md §4.3).
//!
//! Every application runs its real MPI communication structure in both
//! modes; the difference is confined to the leaf work:
//!
//! * **Execute** — numerical kernels run for real on real data, messages
//!   carry real payloads, and results are verifiable (tests use this mode);
//! * **Model** — leaf kernels are replaced by their work profiles fed to the
//!   platform timing model, and messages are size-only (the large-scale
//!   figure reproductions use this mode).

use serde::{Deserialize, Serialize};

/// Application execution mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Mode {
    /// Real numerics and payloads (testable, slower).
    Execute,
    /// Work profiles and size-only messages (scalable).
    Model,
}

impl Mode {
    /// Whether this mode carries real payload data.
    pub fn carries_data(self) -> bool {
        matches!(self, Mode::Execute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_flag() {
        assert!(Mode::Execute.carries_data());
        assert!(!Mode::Model.carries_data());
    }
}
