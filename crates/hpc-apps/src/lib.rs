//! # hpc-apps — the production applications of the §4 scalability study
//!
//! Real implementations of all five Table-3 applications, written against
//! the `simmpi` message-passing runtime:
//!
//! * [`hpl`] — distributed LU with partial pivoting (High-Performance
//!   Linpack), residual-verified;
//! * [`treecode`] — Barnes–Hut octree N-body (PEPC), accuracy-verified
//!   against direct summation;
//! * [`hydro`] — 2-D finite-volume shallow-water solver (HYDRO),
//!   conservation-verified;
//! * [`md`] — Lennard-Jones molecular dynamics with cell lists (GROMACS),
//!   verified against brute-force forces;
//! * [`sem`] — spectral-element wave propagation (SPECFEM3D), wave-speed and
//!   energy verified.
//!
//! Every application runs in *Execute* mode (real numerics, used by tests
//! and examples) and *Model* mode (roofline-timed work + size-only
//! messages, used for the cluster-scale Fig 6 reproduction) — see
//! [`mode::Mode`].
//!
//! [`scaling`] drives the Fig 6 study; [`registry`] is Table 3 itself.

#![warn(missing_docs)]
// Index-based loops are used deliberately throughout the numerical kernels:
// they mirror the reference algorithms and keep parallel/serial variants
// textually comparable.
#![allow(clippy::needless_range_loop)]

pub mod hpl;
pub mod hydro;
pub mod md;
pub mod mode;
pub mod registry;
pub mod resilience;
pub mod scaling;
pub mod sem;
pub mod treecode;

pub use mode::Mode;
pub use registry::{table3, AppId, AppSpec};
pub use scaling::{
    fig6, final_efficiency, measure_scaling_cell, runnable_nodes, scaling_series,
    series_from_measurements, try_measure_scaling_cell, ScalingMeasurement, ScalingPoint,
    ScalingSeries, FIG6_NODES,
};
