//! PEPC (Table 3): "tree code for N-body problem" — "computes long-range
//! Coulomb forces for a set of charged particles".
//!
//! Implemented as a real Barnes–Hut octree code: bodies are block-distributed
//! across ranks; each step allgathers the body set (the replicated-essential-
//! tree simplification of PEPC's tree exchange — documented in DESIGN.md),
//! builds a real octree with centres of charge, and evaluates forces on the
//! local bodies with the θ multipole-acceptance criterion.
//!
//! Because the allgather volume scales with the *total* body count while the
//! local work shrinks as `n/P`, strong scaling degrades for small inputs —
//! exactly the behaviour the paper reports for PEPC ("relatively poor strong
//! scalability partly because the input set that we can fit on our cluster
//! is too small").

use simmpi::{JobSpec, Msg, Rank, ReduceOp};
use soc_arch::{AccessPattern, WorkProfile};

use crate::mode::Mode;

/// A charged particle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Particle {
    /// Position.
    pub pos: [f64; 3],
    /// Charge.
    pub charge: f64,
}

/// Tree-code configuration.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Total number of particles.
    pub n: usize,
    /// Multipole acceptance parameter θ (smaller = more accurate).
    pub theta: f64,
    /// Softening length squared.
    pub eps2: f64,
    /// Number of force-evaluation steps.
    pub steps: usize,
    /// Execution mode.
    pub mode: Mode,
}

impl TreeConfig {
    /// Small Execute-mode configuration for tests.
    pub fn small() -> TreeConfig {
        TreeConfig { n: 512, theta: 0.4, eps2: 1e-6, steps: 1, mode: Mode::Execute }
    }

    /// The Fig 6 strong-scaling input (Model mode): the largest set that
    /// fits the cluster ("the input set ... is too small" for good scaling).
    pub fn fig6() -> TreeConfig {
        TreeConfig { n: 300_000, theta: 0.5, eps2: 1e-6, steps: 4, mode: Mode::Model }
    }
}

/// Deterministic particle cloud in the unit cube.
pub fn make_particles(n: usize) -> Vec<Particle> {
    (0..n)
        .map(|i| {
            let h = |k: u64| {
                let mut x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(k * 0x1234567);
                x ^= x >> 31;
                x = x.wrapping_mul(0xBF58476D1CE4E5B9);
                x ^= x >> 29;
                (x % 1_000_000) as f64 / 1_000_000.0
            };
            Particle { pos: [h(1), h(2), h(3)], charge: if i % 2 == 0 { 1.0 } else { -1.0 } }
        })
        .collect()
}

// --- The octree -----------------------------------------------------------

struct Node {
    centre: [f64; 3], // cell centre
    half: f64,        // half edge length
    /// Total charge and charge-weighted position (centre of charge uses
    /// absolute charges to stay meaningful for mixed-sign systems).
    q_sum: f64,
    aq_sum: f64,
    aq_pos: [f64; 3],
    children: Option<Box<[Option<Node>; 8]>>,
    body: Option<usize>,
}

impl Node {
    fn leaf(centre: [f64; 3], half: f64) -> Node {
        Node { centre, half, q_sum: 0.0, aq_sum: 0.0, aq_pos: [0.0; 3], children: None, body: None }
    }

    fn octant(&self, p: &[f64; 3]) -> usize {
        (usize::from(p[0] >= self.centre[0]))
            | (usize::from(p[1] >= self.centre[1]) << 1)
            | (usize::from(p[2] >= self.centre[2]) << 2)
    }

    fn child_centre(&self, o: usize) -> [f64; 3] {
        let h = self.half / 2.0;
        [
            self.centre[0] + if o & 1 != 0 { h } else { -h },
            self.centre[1] + if o & 2 != 0 { h } else { -h },
            self.centre[2] + if o & 4 != 0 { h } else { -h },
        ]
    }

    fn insert(&mut self, idx: usize, bodies: &[Particle], depth: u32) {
        const MAX_DEPTH: u32 = 64;
        if self.children.is_none() && self.body.is_none() && self.q_sum == 0.0 && self.aq_sum == 0.0
        {
            self.body = Some(idx);
            self.accumulate(idx, bodies);
            return;
        }
        if self.children.is_none() {
            // Split: push the resident body down.
            let resident = self.body.take();
            self.children = Some(Box::default());
            if let Some(rb) = resident {
                if depth < MAX_DEPTH {
                    self.push_down(rb, bodies, depth);
                }
            }
        }
        if depth < MAX_DEPTH {
            self.push_down(idx, bodies, depth);
        }
        self.accumulate(idx, bodies);
    }

    fn push_down(&mut self, idx: usize, bodies: &[Particle], depth: u32) {
        let o = self.octant(&bodies[idx].pos);
        let cc = self.child_centre(o);
        let half = self.half / 2.0;
        let children = self.children.as_mut().unwrap();
        let child = children[o].get_or_insert_with(|| Node::leaf(cc, half));
        child.insert(idx, bodies, depth + 1);
    }

    fn accumulate(&mut self, idx: usize, bodies: &[Particle]) {
        let b = &bodies[idx];
        let aq = b.charge.abs();
        self.q_sum += b.charge;
        self.aq_sum += aq;
        for k in 0..3 {
            self.aq_pos[k] += aq * b.pos[k];
        }
    }

    fn centre_of_charge(&self) -> [f64; 3] {
        if self.aq_sum == 0.0 {
            return self.centre;
        }
        [self.aq_pos[0] / self.aq_sum, self.aq_pos[1] / self.aq_sum, self.aq_pos[2] / self.aq_sum]
    }
}

/// Build an octree over all bodies.
pub struct Octree {
    root: Node,
}

impl Octree {
    /// Build from a body set (positions must lie in the unit cube).
    pub fn build(bodies: &[Particle]) -> Octree {
        let mut root = Node::leaf([0.5, 0.5, 0.5], 0.5);
        for i in 0..bodies.len() {
            root.insert(i, bodies, 0);
        }
        Octree { root }
    }

    /// Coulomb field at body `i` via the Barnes–Hut traversal; returns the
    /// field vector and the number of interactions evaluated.
    pub fn field_at(
        &self,
        i: usize,
        bodies: &[Particle],
        theta: f64,
        eps2: f64,
    ) -> ([f64; 3], u64) {
        let mut field = [0.0f64; 3];
        let mut interactions = 0u64;
        let target = bodies[i].pos;
        let mut stack: Vec<&Node> = vec![&self.root];
        while let Some(node) = stack.pop() {
            if node.aq_sum == 0.0 {
                continue;
            }
            let coc = node.centre_of_charge();
            let dx = coc[0] - target[0];
            let dy = coc[1] - target[1];
            let dz = coc[2] - target[2];
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            let size = 2.0 * node.half;
            let is_leaf_body = node.children.is_none();
            if is_leaf_body || size * size < theta * theta * r2 {
                if is_leaf_body && node.body == Some(i) {
                    continue; // self-interaction
                }
                let inv_r3 = 1.0 / (r2 * r2.sqrt());
                let q = node.q_sum;
                field[0] += q * dx * inv_r3;
                field[1] += q * dy * inv_r3;
                field[2] += q * dz * inv_r3;
                interactions += 1;
            } else if let Some(children) = &node.children {
                for c in children.iter().flatten() {
                    stack.push(c);
                }
            }
        }
        (field, interactions)
    }
}

/// Direct O(n²) field for verification.
pub fn direct_field(i: usize, bodies: &[Particle], eps2: f64) -> [f64; 3] {
    let mut f = [0.0; 3];
    let t = bodies[i].pos;
    for (j, b) in bodies.iter().enumerate() {
        if j == i {
            continue;
        }
        let dx = b.pos[0] - t[0];
        let dy = b.pos[1] - t[1];
        let dz = b.pos[2] - t[2];
        let r2 = dx * dx + dy * dy + dz * dz + eps2;
        let inv_r3 = 1.0 / (r2 * r2.sqrt());
        f[0] += b.charge * dx * inv_r3;
        f[1] += b.charge * dy * inv_r3;
        f[2] += b.charge * dz * inv_r3;
    }
    f
}

/// The per-rank tree-code program; returns the sum of |field| over local
/// bodies (Execute) or 0.0 (Model).
pub async fn treecode_rank(r: &mut Rank, cfg: &TreeConfig) -> f64 {
    let p = r.size() as usize;
    let me = r.rank() as usize;
    let n = cfg.n;
    let lo = me * n / p;
    let hi = (me + 1) * n / p;
    let nlocal = hi - lo;

    let all = cfg.mode.carries_data().then(|| make_particles(n));
    let mut field_sum = 0.0;

    for _ in 0..cfg.steps {
        // --- Body exchange: allgather everyone's particles ----------------
        let my_msg = match &all {
            Some(bodies) => {
                let mut v = Vec::with_capacity(nlocal * 4);
                for b in &bodies[lo..hi] {
                    v.extend_from_slice(&b.pos);
                    v.push(b.charge);
                }
                Msg::from_f64s(&v)
            }
            None => Msg::size_only((nlocal * 32) as u64),
        };
        r.phase_begin("pepc.exchange");
        let gathered = r.allgather(my_msg).await;
        r.phase_end("pepc.exchange");

        match &all {
            Some(_) => {
                // Reassemble the global set from the gathered payloads (in
                // rank order the concatenation is exactly `make_particles`).
                let mut bodies = Vec::with_capacity(n);
                for m in &gathered {
                    for c in m.to_f64s().chunks_exact(4) {
                        bodies.push(Particle { pos: [c[0], c[1], c[2]], charge: c[3] });
                    }
                }
                // --- Tree build + local force evaluation ------------------
                r.phase_begin("pepc.build");
                let tree = Octree::build(&bodies);
                r.phase_end("pepc.build");
                r.phase_begin("pepc.walk");
                for i in lo..hi {
                    let (f, _) = tree.field_at(i, &bodies, cfg.theta, cfg.eps2);
                    field_sum += (f[0] * f[0] + f[1] * f[1] + f[2] * f[2]).sqrt();
                }
                r.phase_end("pepc.walk");
            }
            None => {
                // Model mode: tree build (~n log n light ops, shared across
                // ranks is replicated => cost n log n per rank) + traversal
                // for the local bodies.
                let lg = (n as f64).log2();
                let build = WorkProfile::new(
                    "pepc-build",
                    6.0 * n as f64 * lg,
                    24.0 * n as f64,
                    AccessPattern::Irregular,
                );
                // ~interactions per body at θ≈0.5 grows ~ log n.
                let inter_per_body = 28.0 * lg;
                let eval = WorkProfile::new(
                    "pepc-eval",
                    nlocal as f64 * inter_per_body * 22.0,
                    nlocal as f64 * inter_per_body * 8.0,
                    AccessPattern::Irregular,
                )
                .with_imbalance(0.1);
                r.phase_begin("pepc.build");
                r.compute(&build).await;
                r.phase_end("pepc.build");
                r.phase_begin("pepc.walk");
                r.compute(&eval).await;
                r.phase_end("pepc.walk");
            }
        }
    }
    field_sum
}

/// Run the tree code; returns `(elapsed_seconds, global_field_sum)`, or the
/// fault that stopped the run.
pub fn try_run_treecode(spec: JobSpec, cfg: TreeConfig) -> Result<(f64, f64), simmpi::MpiFault> {
    let run = simmpi::run_mpi(spec, move |mut r| async move {
        let t0 = r.now();
        let f = treecode_rank(&mut r, &cfg).await;
        r.barrier().await;
        let dt = (r.now() - t0).as_secs_f64();
        let total = r.allreduce(ReduceOp::Sum, vec![f]).await;
        (dt, total[0])
    })?;
    Ok((run.results.iter().map(|x| x.0).fold(0.0, f64::max), run.results[0].1))
}

/// [`try_run_treecode`] for callers on a clean spec.
pub fn run_treecode(spec: JobSpec, cfg: TreeConfig) -> (f64, f64) {
    try_run_treecode(spec, cfg).expect("treecode run failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_arch::Platform;

    fn spec(p: u32) -> JobSpec {
        JobSpec::new(Platform::tegra2(), p)
    }

    #[test]
    fn barnes_hut_approximates_direct_sum() {
        let bodies = make_particles(400);
        let tree = Octree::build(&bodies);
        let mut max_rel = 0.0f64;
        for i in (0..400).step_by(17) {
            let (bh, _) = tree.field_at(i, &bodies, 0.3, 1e-6);
            let ds = direct_field(i, &bodies, 1e-6);
            let mag = (ds[0] * ds[0] + ds[1] * ds[1] + ds[2] * ds[2]).sqrt().max(1e-12);
            let err = ((bh[0] - ds[0]).powi(2) + (bh[1] - ds[1]).powi(2) + (bh[2] - ds[2]).powi(2))
                .sqrt();
            max_rel = max_rel.max(err / mag);
        }
        assert!(max_rel < 0.09, "BH relative error {max_rel}");
    }

    #[test]
    fn theta_zero_equals_direct_sum() {
        // θ = 0 forces full opening: exact (up to traversal order).
        let bodies = make_particles(100);
        let tree = Octree::build(&bodies);
        let (bh, _) = tree.field_at(7, &bodies, 0.0, 1e-6);
        let ds = direct_field(7, &bodies, 1e-6);
        for k in 0..3 {
            let tol = 1e-9 * (1.0 + ds[k].abs());
            assert!((bh[k] - ds[k]).abs() < tol, "axis {k}: {} vs {}", bh[k], ds[k]);
        }
    }

    #[test]
    fn larger_theta_needs_fewer_interactions() {
        let bodies = make_particles(2000);
        let tree = Octree::build(&bodies);
        let (_, tight) = tree.field_at(0, &bodies, 0.2, 1e-6);
        let (_, loose) = tree.field_at(0, &bodies, 0.9, 1e-6);
        assert!(loose < tight, "{loose} !< {tight}");
        // And far fewer than direct sum.
        assert!(loose < 1999);
    }

    #[test]
    fn parallel_field_sum_matches_single_rank() {
        let cfg = TreeConfig::small();
        let (_, f1) = run_treecode(spec(1), cfg);
        let (_, f4) = run_treecode(spec(4), cfg);
        assert!((f1 - f4).abs() < 1e-9 * f1.abs().max(1.0), "{f1} vs {f4}");
    }

    #[test]
    fn model_mode_comm_does_not_shrink_with_ranks() {
        // The allgather term is why PEPC scales poorly: doubling ranks does
        // not halve the runtime.
        let cfg = TreeConfig { n: 60_000, steps: 2, mode: Mode::Model, ..TreeConfig::small() };
        let (t8, _) = run_treecode(spec(8), cfg);
        let (t16, _) = run_treecode(spec(16), cfg);
        let speedup = t8 / t16;
        assert!(speedup > 1.0, "more ranks should still help a bit: {speedup}");
        assert!(speedup < 1.9, "scaling should be clearly sub-linear: {speedup}");
    }

    #[test]
    fn duplicate_position_bodies_do_not_hang_the_tree() {
        let mut bodies = make_particles(16);
        bodies[3].pos = bodies[5].pos; // exact duplicate triggers MAX_DEPTH
        let tree = Octree::build(&bodies);
        let (f, _) = tree.field_at(0, &bodies, 0.5, 1e-6);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
