//! The Fig 6 scalability study: run every Table-3 application on the
//! Tibidabo model across node counts and report speed-ups the way the paper
//! does — strong scaling for the applications (with the "assume linear at
//! the smallest runnable node count" convention for PEPC-style inputs), weak
//! scaling efficiency for HPL.

use cluster::Machine;
use serde::{Deserialize, Serialize};
use simmpi::{JobSpec, MpiFault};

use crate::hpl::{try_run_hpl, HplConfig};
use crate::hydro::{try_run_hydro, HydroConfig};
use crate::md::{try_run_md, MdConfig};
use crate::registry::{table3, AppId};
use crate::sem::{try_run_sem, SemConfig};
use crate::treecode::{try_run_treecode, TreeConfig};

/// The node counts of the Fig 6 x-axis.
pub const FIG6_NODES: [u32; 7] = [4, 8, 16, 24, 32, 64, 96];

/// One point of one Fig 6 series.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Node count.
    pub nodes: u32,
    /// Elapsed virtual seconds.
    pub seconds: f64,
    /// Speed-up (strong: vs the linear-extrapolated smallest run; weak for
    /// HPL: efficiency × nodes).
    pub speedup: f64,
}

/// One Fig 6 series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingSeries {
    /// Application name (Table 3).
    pub app: &'static str,
    /// Whether this is the weak-scaling series.
    pub weak: bool,
    /// The measured points.
    pub points: Vec<ScalingPoint>,
}

/// Returns `(seconds, hpl_efficiency)` — the efficiency is only meaningful
/// for HPL's weak-scaling series.
fn try_elapsed_for(app: AppId, spec: JobSpec, nodes: u32) -> Result<(f64, f64), MpiFault> {
    let peak_node = spec.platform.soc.peak_gflops_max();
    Ok(match app {
        AppId::Hpl => {
            let res = try_run_hpl(spec, HplConfig::tibidabo_weak(nodes))?;
            (res.seconds, res.gflops / (nodes as f64 * peak_node))
        }
        AppId::Pepc => (try_run_treecode(spec, TreeConfig::fig6())?.0, 0.0),
        AppId::Hydro => (try_run_hydro(spec, HydroConfig::fig6())?.0, 0.0),
        AppId::Gromacs => (try_run_md(spec, MdConfig::fig6())?.0, 0.0),
        AppId::Specfem3d => (try_run_sem(spec, SemConfig::fig6())?.0, 0.0),
    })
}

/// One raw Fig 6 measurement: a single (application, node-count) simulation.
/// This is the unit the parallel sweep executor schedules — every cell is an
/// independent DES run, so cells can execute on any worker thread and the
/// series is reassembled afterwards by [`series_from_measurements`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScalingMeasurement {
    /// Node count of this cell.
    pub nodes: u32,
    /// Elapsed virtual seconds.
    pub seconds: f64,
    /// HPL sustained-over-peak efficiency (0.0 for the strong-scaling apps).
    pub hpl_efficiency: f64,
}

/// The node counts an application actually runs at, applying the paper's
/// minimum-input-footprint convention: counts below `min_nodes` are dropped,
/// and if nothing survives the anchor point alone is run.
pub fn runnable_nodes(app: AppId, node_counts: &[u32]) -> Vec<u32> {
    let spec_row = table3().into_iter().find(|a| a.id == app).expect("unknown app");
    let mut counts: Vec<u32> =
        node_counts.iter().copied().filter(|&n| n >= spec_row.min_nodes).collect();
    if counts.is_empty() {
        // The requested range is entirely below the input's footprint (e.g.
        // a quick Fig 6 run below PEPC's 24-node minimum): run the anchor
        // point only.
        counts.push(spec_row.min_nodes);
    }
    counts
}

/// Run one (application, node-count) cell on `machine`, surfacing the fault
/// (watchdog budget, injected crash, engine failure) that stopped the run.
pub fn try_measure_scaling_cell(
    machine: &Machine,
    app: AppId,
    nodes: u32,
) -> Result<ScalingMeasurement, MpiFault> {
    let (seconds, hpl_efficiency) = try_elapsed_for(app, machine.job(nodes), nodes)?;
    Ok(ScalingMeasurement { nodes, seconds, hpl_efficiency })
}

/// Run one (application, node-count) cell on `machine`.
pub fn measure_scaling_cell(machine: &Machine, app: AppId, nodes: u32) -> ScalingMeasurement {
    try_measure_scaling_cell(machine, app, nodes).expect("scaling cell failed")
}

/// Assemble a Fig 6 series from per-cell measurements (in ascending node
/// order, as produced by [`runnable_nodes`]). The speed-up normalisation is
/// inherently a merge step: strong scaling needs the smallest runnable point
/// as its linear anchor, weak scaling needs each cell's own efficiency.
pub fn series_from_measurements(app: AppId, cells: &[ScalingMeasurement]) -> ScalingSeries {
    let spec_row = table3().into_iter().find(|a| a.id == app).expect("unknown app");
    assert!(!cells.is_empty(), "series needs at least one measurement");
    let mut points: Vec<ScalingPoint> = cells
        .iter()
        .map(|c| ScalingPoint { nodes: c.nodes, seconds: c.seconds, speedup: 0.0 })
        .collect();
    if spec_row.weak_scaling {
        // Weak scaling (HPL): the figure's y-value is the sustained
        // performance expressed in ideal-node equivalents — `n × efficiency`
        // (96 × 51% ≈ 49 at the paper's endpoint).
        for (p, c) in points.iter_mut().zip(cells) {
            p.speedup = p.nodes as f64 * c.hpl_efficiency;
        }
    } else {
        // Strong scaling, with the paper's convention: "we calculated the
        // speed-up assuming linear scaling on the smallest number of nodes
        // that could execute the benchmark".
        let base = points[0];
        for p in &mut points {
            p.speedup = base.nodes as f64 * base.seconds / p.seconds;
        }
    }
    ScalingSeries { app: spec_row.name, weak: spec_row.weak_scaling, points }
}

/// Run one application's Fig 6 series on `machine` over `node_counts` — the
/// serial composition of [`runnable_nodes`] → [`measure_scaling_cell`] →
/// [`series_from_measurements`].
pub fn scaling_series(machine: &Machine, app: AppId, node_counts: &[u32]) -> ScalingSeries {
    let counts = runnable_nodes(app, node_counts);
    let cells: Vec<ScalingMeasurement> =
        counts.iter().map(|&n| measure_scaling_cell(machine, app, n)).collect();
    series_from_measurements(app, &cells)
}

/// Run the complete Fig 6 (all five applications).
pub fn fig6(machine: &Machine, node_counts: &[u32]) -> Vec<ScalingSeries> {
    table3().iter().map(|a| scaling_series(machine, a.id, node_counts)).collect()
}

/// Parallel efficiency of the largest point of a series (speedup / nodes).
pub fn final_efficiency(s: &ScalingSeries) -> f64 {
    let last = s.points.last().expect("empty series");
    last.speedup / last.nodes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tibidabo() -> Machine {
        Machine::tibidabo()
    }

    #[test]
    fn specfem_scales_best_and_pepc_worst() {
        // The qualitative ordering of Fig 6 at scale.
        let m = tibidabo();
        let counts = [4, 16, 48];
        let sem = scaling_series(&m, AppId::Specfem3d, &counts);
        let pepc = scaling_series(&m, AppId::Pepc, &[24, 48]);
        let e_sem = final_efficiency(&sem);
        let e_pepc = final_efficiency(&pepc);
        assert!(e_sem > 0.8, "SPECFEM3D efficiency {e_sem}");
        assert!(e_pepc < e_sem, "PEPC {e_pepc} should trail SPECFEM3D {e_sem}");
    }

    #[test]
    fn hydro_loses_linearity_beyond_16_nodes() {
        let m = tibidabo();
        let s = scaling_series(&m, AppId::Hydro, &[4, 16, 64]);
        let e16 = s.points[1].speedup / 16.0;
        let e64 = s.points[2].speedup / 64.0;
        assert!(e16 > 0.75, "HYDRO at 16 nodes: {e16}");
        assert!(e64 < e16, "HYDRO should degrade past 16: {e64} !< {e16}");
    }

    #[test]
    fn speedups_are_monotonically_increasing() {
        let m = tibidabo();
        for app in [AppId::Hydro, AppId::Specfem3d, AppId::Gromacs] {
            let s = scaling_series(&m, app, &[4, 8, 16]);
            for w in s.points.windows(2) {
                assert!(
                    w[1].speedup > w[0].speedup,
                    "{}: {} !> {} at {} nodes",
                    s.app,
                    w[1].speedup,
                    w[0].speedup,
                    w[1].nodes
                );
            }
        }
    }

    #[test]
    fn pepc_respects_its_minimum_input_size() {
        let m = tibidabo();
        let s = scaling_series(&m, AppId::Pepc, &[4, 8, 24, 48]);
        assert_eq!(s.points[0].nodes, 24, "PEPC needs at least 24 nodes");
        // By the paper's convention the 24-node point is the linear anchor.
        assert!((s.points[0].speedup - 24.0).abs() < 1e-9);
    }
}
