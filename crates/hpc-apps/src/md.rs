//! GROMACS (Table 3): "a versatile package for molecular dynamics
//! simulations". Implemented as a real Lennard-Jones molecular dynamics code
//! with cell lists and a 1-D slab domain decomposition: each step the ranks
//! exchange one slab of ghost atoms with each neighbour, compute short-range
//! LJ forces with a cutoff, and integrate with velocity Verlet.
//!
//! The Fig 6 behaviour ("its scalability improves as the input size is
//! increased" — the run uses "an input that fits in the memory of two
//! nodes") comes from the ghost-exchange surface term staying constant while
//! the per-rank volume work shrinks.

use simmpi::{JobSpec, Msg, Rank, ReduceOp};
use soc_arch::{AccessPattern, WorkProfile};

use crate::mode::Mode;

/// An atom: position and velocity in a periodic box (z-slab decomposition).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Atom {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
}

/// MD configuration.
#[derive(Clone, Copy, Debug)]
pub struct MdConfig {
    /// Total number of atoms.
    pub n: usize,
    /// Cubic box edge length.
    pub box_len: f64,
    /// LJ cutoff radius.
    pub cutoff: f64,
    /// Time step.
    pub dt: f64,
    /// Number of steps.
    pub steps: usize,
    /// Execution mode.
    pub mode: Mode,
}

impl MdConfig {
    /// Small Execute-mode configuration (modest density, stable dt).
    pub fn small() -> MdConfig {
        MdConfig { n: 500, box_len: 10.0, cutoff: 2.5, dt: 1e-3, steps: 10, mode: Mode::Execute }
    }

    /// The Fig 6 strong-scaling input: sized to fit two Tibidabo nodes.
    pub fn fig6() -> MdConfig {
        MdConfig { n: 60_000, box_len: 47.6, cutoff: 2.5, dt: 1e-3, steps: 10, mode: Mode::Model }
    }
}

/// Deterministic FCC-ish lattice with small velocity perturbations.
pub fn make_atoms(cfg: &MdConfig) -> Vec<Atom> {
    let per_edge = (cfg.n as f64).cbrt().ceil() as usize;
    let a = cfg.box_len / per_edge as f64;
    let mut atoms = Vec::with_capacity(cfg.n);
    'outer: for i in 0..per_edge {
        for j in 0..per_edge {
            for k in 0..per_edge {
                if atoms.len() >= cfg.n {
                    break 'outer;
                }
                let id = atoms.len() as u64;
                let h = |s: u64| {
                    let mut x = id.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(s);
                    x ^= x >> 30;
                    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
                    x ^= x >> 31;
                    ((x % 1000) as f64 / 1000.0 - 0.5) * 0.05
                };
                atoms.push(Atom {
                    pos: [
                        (i as f64 + 0.5) * a + h(1) * a,
                        (j as f64 + 0.5) * a + h(2) * a,
                        (k as f64 + 0.5) * a + h(3) * a,
                    ],
                    vel: [h(4), h(5), h(6)],
                });
            }
        }
    }
    atoms
}

#[inline]
fn min_image(mut d: f64, box_len: f64) -> f64 {
    if d > box_len / 2.0 {
        d -= box_len;
    } else if d < -box_len / 2.0 {
        d += box_len;
    }
    d
}

/// LJ force magnitude over distance (f/r) and potential at squared distance
/// `r2` (ε = σ = 1, shifted at the cutoff).
#[inline]
fn lj(r2: f64) -> (f64, f64) {
    let inv_r2 = 1.0 / r2;
    let s6 = inv_r2 * inv_r2 * inv_r2;
    let f_over_r = 24.0 * inv_r2 * s6 * (2.0 * s6 - 1.0);
    let pot = 4.0 * s6 * (s6 - 1.0);
    (f_over_r, pot)
}

/// Compute forces on `targets` from all `sources` within the cutoff using a
/// cell-listed neighbour search; returns (forces, potential energy counted
/// once per pair among targets, 0.5 per target-ghost pair).
pub fn forces_cell_list(
    targets: &[Atom],
    sources: &[Atom],
    cfg: &MdConfig,
) -> (Vec<[f64; 3]>, f64) {
    let ncell = (cfg.box_len / cfg.cutoff).floor().max(1.0) as usize;
    let cell_len = cfg.box_len / ncell as f64;
    let cell_of = |p: &[f64; 3]| -> (usize, usize, usize) {
        let c = |x: f64| (((x / cell_len) as isize).rem_euclid(ncell as isize)) as usize;
        (c(p[0]), c(p[1]), c(p[2]))
    };
    // Bin sources into cells.
    let mut cells: Vec<Vec<usize>> = vec![Vec::new(); ncell * ncell * ncell];
    for (i, s) in sources.iter().enumerate() {
        let (cx, cy, cz) = cell_of(&s.pos);
        cells[(cz * ncell + cy) * ncell + cx].push(i);
    }
    let cut2 = cfg.cutoff * cfg.cutoff;
    let mut forces = vec![[0.0; 3]; targets.len()];
    let mut pot = 0.0;
    for (ti, t) in targets.iter().enumerate() {
        let (cx, cy, cz) = cell_of(&t.pos);
        for dz in -1isize..=1 {
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let nx = (cx as isize + dx).rem_euclid(ncell as isize) as usize;
                    let ny = (cy as isize + dy).rem_euclid(ncell as isize) as usize;
                    let nz = (cz as isize + dz).rem_euclid(ncell as isize) as usize;
                    for &si in &cells[(nz * ncell + ny) * ncell + nx] {
                        let s = &sources[si];
                        let rx = min_image(t.pos[0] - s.pos[0], cfg.box_len);
                        let ry = min_image(t.pos[1] - s.pos[1], cfg.box_len);
                        let rz = min_image(t.pos[2] - s.pos[2], cfg.box_len);
                        let r2 = rx * rx + ry * ry + rz * rz;
                        if r2 > cut2 || r2 < 1e-12 {
                            continue;
                        }
                        let (f_over_r, p) = lj(r2);
                        forces[ti][0] += f_over_r * rx;
                        forces[ti][1] += f_over_r * ry;
                        forces[ti][2] += f_over_r * rz;
                        pot += 0.5 * p;
                    }
                }
            }
        }
    }
    (forces, pot)
}

/// Kinetic energy of a set of atoms (unit mass).
pub fn kinetic(atoms: &[Atom]) -> f64 {
    atoms
        .iter()
        .map(|a| 0.5 * (a.vel[0] * a.vel[0] + a.vel[1] * a.vel[1] + a.vel[2] * a.vel[2]))
        .sum()
}

const TAG_GHOST: u32 = 11;

/// The per-rank MD program; returns (kinetic, potential) of the local atoms
/// after the run (Execute mode) or (0,0) in Model mode.
///
/// Decomposition: the *global* atom array is partitioned by index block —
/// with the lattice generator this is a z-ordered slab-ish split; ghost
/// exchange ships the full neighbouring partitions (an upper bound on the
/// slab surface; documented simplification: PEPC-style halo trimming is a
/// refinement, the comm-scaling term is what matters for Fig 6).
pub async fn md_rank(r: &mut Rank, cfg: &MdConfig) -> (f64, f64) {
    let p = r.size() as usize;
    let me = r.rank() as usize;
    let n = cfg.n;
    let lo = me * n / p;
    let hi = (me + 1) * n / p;
    let nlocal = hi - lo;

    let mut local: Option<Vec<Atom>> =
        cfg.mode.carries_data().then(|| make_atoms(cfg)[lo..hi].to_vec());
    // Ghost region size in Model mode: two neighbour surface shells —
    // ~(cutoff / slab_thickness) of each neighbour's atoms, capped at all.
    let slab_frac = (cfg.cutoff * p as f64 / cfg.box_len).min(1.0);
    let ghost_bytes_model = ((n / p) as f64 * slab_frac * 48.0) as u64 + 64;

    let mut pot = 0.0;
    for _ in 0..cfg.steps {
        // --- Ghost exchange ----------------------------------------------
        let sources: Vec<Atom> = if let Some(atoms) = &local {
            // Execute mode at small scale: exchange full partitions via
            // allgather (correctness reference; the surface-trimmed version
            // is what Model mode prices).
            let mut v = Vec::with_capacity(atoms.len() * 6);
            for a in atoms {
                v.extend_from_slice(&a.pos);
                v.extend_from_slice(&a.vel);
            }
            let gathered = r.allgather(Msg::from_f64s(&v)).await;
            let mut all = Vec::with_capacity(n);
            for m in &gathered {
                for c in m.to_f64s().chunks_exact(6) {
                    all.push(Atom { pos: [c[0], c[1], c[2]], vel: [c[3], c[4], c[5]] });
                }
            }
            all
        } else {
            // Model mode: two neighbour exchanges (periodic slab ring) plus
            // the PME-style long-range term real GROMACS pays — a global
            // reduction of the reciprocal-space contribution. The Execute-
            // mode code is LJ-only (no PME), so this term is priced in the
            // model only; it is the main reason GROMACS's strong scaling is
            // "limited by the input size" in Fig 6.
            if p > 1 {
                let next = ((me + 1) % p) as u32;
                let prev = ((me + p - 1) % p) as u32;
                r.sendrecv(next, TAG_GHOST, Msg::size_only(ghost_bytes_model), prev, TAG_GHOST)
                    .await;
                r.sendrecv(
                    prev,
                    TAG_GHOST + 1,
                    Msg::size_only(ghost_bytes_model),
                    next,
                    TAG_GHOST + 1,
                )
                .await;
                let _ = r.allreduce(ReduceOp::Sum, vec![0.0; 256]).await;
            }
            Vec::new()
        };

        // --- Force computation + integration ------------------------------
        match &mut local {
            Some(atoms) => {
                let (forces, pe) = forces_cell_list(atoms, &sources, cfg);
                pot = pe;
                for (a, f) in atoms.iter_mut().zip(&forces) {
                    for k in 0..3 {
                        a.vel[k] += f[k] * cfg.dt;
                        a.pos[k] = (a.pos[k] + a.vel[k] * cfg.dt).rem_euclid(cfg.box_len);
                    }
                }
            }
            None => {
                // ~55 neighbours in the cutoff sphere at this density; ~45
                // flops per pair + integration.
                let pairs = nlocal as f64 * 55.0;
                let work = WorkProfile::new(
                    "md-forces",
                    pairs * 45.0 + nlocal as f64 * 12.0,
                    pairs * 12.0,
                    AccessPattern::Irregular,
                )
                .with_imbalance(0.08);
                r.compute(&work).await;
            }
        }
    }
    match &local {
        Some(atoms) => (kinetic(atoms), pot),
        None => (0.0, 0.0),
    }
}

/// Run MD; returns `(elapsed_seconds, total_kinetic, total_potential)`, or
/// the fault that stopped the run.
pub fn try_run_md(spec: JobSpec, cfg: MdConfig) -> Result<(f64, f64, f64), simmpi::MpiFault> {
    let run = simmpi::run_mpi(spec, move |mut r| async move {
        let t0 = r.now();
        let (ke, pe) = md_rank(&mut r, &cfg).await;
        r.barrier().await;
        let dt = (r.now() - t0).as_secs_f64();
        let tot = r.allreduce(ReduceOp::Sum, vec![ke, pe]).await;
        (dt, tot[0], tot[1])
    })?;
    let t = run.results.iter().map(|x| x.0).fold(0.0, f64::max);
    Ok((t, run.results[0].1, run.results[0].2))
}

/// [`try_run_md`] for callers on a clean spec.
pub fn run_md(spec: JobSpec, cfg: MdConfig) -> (f64, f64, f64) {
    try_run_md(spec, cfg).expect("MD run failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_arch::Platform;

    fn spec(p: u32) -> JobSpec {
        JobSpec::new(Platform::tegra2(), p)
    }

    #[test]
    fn lj_force_changes_sign_at_minimum() {
        // The LJ minimum is at r = 2^(1/6): repulsive inside, attractive out.
        let r_min2 = 2.0f64.powf(1.0 / 3.0);
        let (f_in, _) = lj(0.9 * r_min2);
        let (f_out, _) = lj(1.1 * r_min2);
        assert!(f_in > 0.0, "inside: {f_in}");
        assert!(f_out < 0.0, "outside: {f_out}");
    }

    #[test]
    fn cell_list_matches_brute_force() {
        let cfg = MdConfig { n: 200, ..MdConfig::small() };
        let atoms = make_atoms(&cfg);
        let (fast, pot_fast) = forces_cell_list(&atoms, &atoms, &cfg);
        // Brute force reference.
        let cut2 = cfg.cutoff * cfg.cutoff;
        let mut slow = vec![[0.0; 3]; atoms.len()];
        let mut pot_slow = 0.0;
        for i in 0..atoms.len() {
            for j in 0..atoms.len() {
                if i == j {
                    continue;
                }
                let rx = min_image(atoms[i].pos[0] - atoms[j].pos[0], cfg.box_len);
                let ry = min_image(atoms[i].pos[1] - atoms[j].pos[1], cfg.box_len);
                let rz = min_image(atoms[i].pos[2] - atoms[j].pos[2], cfg.box_len);
                let r2 = rx * rx + ry * ry + rz * rz;
                if r2 > cut2 || r2 < 1e-12 {
                    continue;
                }
                let (f, p) = lj(r2);
                slow[i][0] += f * rx;
                slow[i][1] += f * ry;
                slow[i][2] += f * rz;
                pot_slow += 0.5 * p;
            }
        }
        for (a, b) in fast.iter().zip(&slow) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-9 * (1.0 + b[k].abs()));
            }
        }
        assert!((pot_fast - pot_slow).abs() < 1e-9 * (1.0 + pot_slow.abs()));
    }

    #[test]
    fn momentum_is_conserved_in_serial_run() {
        let cfg = MdConfig::small();
        let run = simmpi::run_mpi(spec(1), move |r| async move {
            let atoms0 = make_atoms(&cfg);
            let p0: [f64; 3] = atoms0.iter().fold([0.0; 3], |mut acc, a| {
                for k in 0..3 {
                    acc[k] += a.vel[k];
                }
                acc
            });
            let _ = r;
            let mut local = atoms0;
            for _ in 0..cfg.steps {
                let src = local.clone();
                let (forces, _) = forces_cell_list(&local, &src, &cfg);
                for (a, f) in local.iter_mut().zip(&forces) {
                    for k in 0..3 {
                        a.vel[k] += f[k] * cfg.dt;
                        a.pos[k] = (a.pos[k] + a.vel[k] * cfg.dt).rem_euclid(cfg.box_len);
                    }
                }
            }
            let p1: [f64; 3] = local.iter().fold([0.0; 3], |mut acc, a| {
                for k in 0..3 {
                    acc[k] += a.vel[k];
                }
                acc
            });
            (0..3).map(|k| (p1[k] - p0[k]).abs()).fold(0.0, f64::max)
        })
        .unwrap();
        assert!(run.results[0] < 1e-9, "momentum drift {}", run.results[0]);
    }

    #[test]
    fn parallel_energies_match_serial() {
        let cfg = MdConfig::small();
        let (_, ke1, pe1) = run_md(spec(1), cfg);
        let (_, ke4, pe4) = run_md(spec(4), cfg);
        assert!((ke1 - ke4).abs() < 1e-9 * (1.0 + ke1.abs()), "{ke1} vs {ke4}");
        assert!((pe1 - pe4).abs() < 1e-9 * (1.0 + pe1.abs()), "{pe1} vs {pe4}");
    }

    #[test]
    fn energy_stays_bounded_over_short_run() {
        let cfg = MdConfig { steps: 50, ..MdConfig::small() };
        let (_, ke, _) = run_md(spec(2), cfg);
        assert!(ke.is_finite() && ke < 1000.0, "kinetic energy blew up: {ke}");
    }

    #[test]
    fn model_mode_scales_strongly_but_sublinearly() {
        let cfg = MdConfig::fig6();
        let cfg = MdConfig { steps: 2, ..cfg };
        let (t4, _, _) = run_md(spec(4), cfg);
        let (t16, _, _) = run_md(spec(16), cfg);
        let s = t4 / t16;
        assert!(s > 2.0 && s < 4.0, "4->16 speedup {s}");
    }
}
