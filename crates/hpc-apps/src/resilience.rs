//! Coordinated checkpoint/restart and silent-data-corruption detection for
//! HPL — the application-level answer to §6.3's reliability limitation.
//!
//! The paper argues that a large unprotected-DRAM cluster sees memory errors
//! daily, so a mobile-SoC machine is only usable with fault tolerance in
//! software. This module supplies exactly that, on top of the deterministic
//! fault injection in `des`/`simmpi`:
//!
//! * **Coordinated checkpoints** — every `k` panels, all ranks synchronise
//!   and write their local block-columns (and pivot history) to a snapshot
//!   store at a modelled node-local write bandwidth. A checkpoint counts
//!   only when *every* rank's snapshot for that panel landed, so a crash
//!   mid-checkpoint rolls back to the previous complete one.
//! * **Restart with spares** — when [`run_hpl_resilient`] sees
//!   [`MpiFault::RankDied`], it maps the dead physical node out via the
//!   job's `node_map`, substitutes the next spare node in the topology,
//!   rebases the fault plan ([`FaultPlan::shifted`] /
//!   [`FaultPlan::without_node`]) and re-runs from the last complete
//!   checkpoint.
//! * **SDC detection** — in Execute mode, scheduled DRAM bit-flips corrupt
//!   real matrix entries ([`Rank::poll_bit_flip`](simmpi::Rank::poll_bit_flip)); the standard HPL scaled
//!   residual at the end of the run is the detector, and a detection also
//!   triggers a rollback. A flip that lands *before* the last checkpoint is
//!   captured inside the snapshots and cannot be recovered from — the same
//!   blind spot real checkpointed HPL has.
//!
//! The [`ResilienceReport`] carries the headline numbers of the resilience
//! experiment: time-to-solution inflation versus a fault-free run, and the
//! fraction of time spent writing checkpoints.

use std::sync::{Arc, Mutex};

use des::{FaultPlan, SimTime};
use simmpi::{run_mpi, JobSpec, MpiFault, ReduceOp};

use crate::hpl::{hpl_rank_ckpt, HplConfig};

/// One rank's saved state at a checkpoint: everything needed to resume the
/// factorisation from that panel.
#[derive(Clone, Debug, Default)]
pub struct RankSnapshot {
    /// Local block-columns (empty in Model mode).
    pub blocks: Vec<Vec<f64>>,
    /// Pivot history for panels before the checkpoint.
    pub pivot_log: Vec<u64>,
}

/// Cross-attempt snapshot storage for coordinated checkpoints.
///
/// Lives outside the simulated world (it models stable storage that
/// survives node crashes). A slot for panel `k` is *complete* — usable for
/// restart — only when all ranks have written it.
#[derive(Debug)]
pub struct CkptStore {
    ranks: usize,
    /// `(panel, per-rank snapshots)`, most recent last.
    slots: Vec<(usize, Vec<Option<RankSnapshot>>)>,
    /// Checkpoint rounds started (rank 0 writes), across all attempts.
    rounds: usize,
}

impl CkptStore {
    /// An empty store for a job of `ranks` ranks.
    pub fn new(ranks: usize) -> CkptStore {
        CkptStore { ranks, slots: Vec::new(), rounds: 0 }
    }

    /// Record `rank`'s snapshot for panel `k`.
    pub fn save(&mut self, k: usize, rank: usize, snap: RankSnapshot) {
        if rank == 0 {
            self.rounds += 1;
        }
        let slot = match self.slots.iter_mut().find(|(panel, _)| *panel == k) {
            Some((_, s)) => s,
            None => {
                self.slots.push((k, vec![None; self.ranks]));
                &mut self.slots.last_mut().unwrap().1
            }
        };
        slot[rank] = Some(snap);
    }

    /// `rank`'s snapshot for panel `k`, if present.
    pub fn load(&self, k: usize, rank: usize) -> Option<RankSnapshot> {
        self.slots.iter().find(|(panel, _)| *panel == k).and_then(|(_, s)| s[rank].clone())
    }

    /// The most recent panel with a snapshot from *every* rank (0 = no
    /// complete checkpoint, restart from scratch).
    pub fn last_complete(&self) -> usize {
        self.slots
            .iter()
            .filter(|(_, s)| s.iter().all(Option::is_some))
            .map(|(k, _)| *k)
            .max()
            .unwrap_or(0)
    }

    /// Checkpoint rounds started across all attempts.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

/// Checkpoint hooks threaded into the HPL panel loop by the resilient
/// driver (see [`hpl_rank_ckpt`]).
#[derive(Clone)]
pub struct CkptHooks {
    /// Checkpoint every this many panels (0 disables checkpointing).
    pub every: usize,
    /// Node-local checkpoint write bandwidth, bytes/s.
    pub write_bw_bytes: f64,
    /// Panel to resume from; snapshots for it must be in the store.
    pub start_k: usize,
    /// Snapshot storage shared across attempts.
    pub store: Arc<Mutex<CkptStore>>,
    /// Corrupt live matrix data when the fault plan's bit-flips strike
    /// (Execute mode only; the residual then detects the SDC).
    pub apply_bit_flips: bool,
}

/// Flip the top mantissa bit of one deterministic-pseudorandomly chosen
/// local matrix entry — the simulated effect of an uncorrected DRAM
/// bit-flip. An O(1) relative perturbation is detected by the scaled
/// residual with enormous margin (its fault-free scale is O(1), not
/// O(1/eps)); flipping an exponent bit instead could produce inf/NaN, which
/// models a *different*, noisier failure than silent corruption.
///
/// The choice is derived from the flip's virtual time, so identical runs
/// corrupt identical entries. Padded columns past the matrix edge are
/// avoided (corruption there would be invisible to verification).
pub(crate) fn corrupt_block(
    blocks: &mut [Vec<f64>],
    block_global: &[usize],
    at: SimTime,
    n: usize,
    nb: usize,
) {
    if blocks.is_empty() {
        return;
    }
    let h = at.as_nanos();
    let li = (h as usize) % blocks.len();
    let j = block_global[li];
    let width = nb.min(n - j * nb);
    let c = ((h >> 8) as usize) % width;
    let row = ((h >> 24) as usize) % n;
    let idx = c * n + row;
    let bits = blocks[li][idx].to_bits() ^ (1u64 << 51);
    blocks[li][idx] = f64::from_bits(bits);
}

/// Configuration of the resilient HPL driver.
#[derive(Clone, Copy, Debug)]
pub struct ResilienceConfig {
    /// Coordinated checkpoint period in panels (0 = no checkpoints: a crash
    /// always restarts the factorisation from scratch).
    pub ckpt_every_panels: usize,
    /// Node-local checkpoint write bandwidth, bytes/s (eMMC/SD class
    /// storage on the paper's boards).
    pub write_bw_bytes: f64,
    /// Fixed virtual-time cost of detecting a failure, reallocating nodes
    /// and relaunching (job-launch latency on the real machine).
    pub restart_overhead: SimTime,
    /// Give up after this many attempts.
    pub max_attempts: u32,
    /// Apply scheduled bit-flips to live data (Execute mode).
    pub apply_bit_flips: bool,
    /// Scaled-residual acceptance threshold (reference HPL uses 16).
    pub residual_limit: f64,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            ckpt_every_panels: 4,
            write_bw_bytes: 20e6,
            restart_overhead: SimTime::from_millis(500),
            max_attempts: 8,
            apply_bit_flips: true,
            residual_limit: 16.0,
        }
    }
}

/// Outcome of a resilient HPL campaign.
#[derive(Clone, Debug)]
pub struct ResilienceReport {
    /// Whether the factorisation eventually completed with an acceptable
    /// residual (Model mode: completed at all).
    pub completed: bool,
    /// Attempts launched (1 = clean first try).
    pub attempts: u32,
    /// Node crashes survived.
    pub crashes: u32,
    /// Communication timeouts survived.
    pub timeouts: u32,
    /// Runs whose residual exposed silent data corruption.
    pub sdc_detected: u32,
    /// Spare nodes consumed by crash recovery.
    pub spares_used: u32,
    /// Total virtual time to solution, including failed attempts, restart
    /// overheads and checkpoint writes.
    pub total_secs: f64,
    /// Fault-free, checkpoint-free baseline time for the same job.
    pub clean_secs: f64,
    /// Modelled time spent writing checkpoints (sum over rounds of the
    /// slowest rank's write).
    pub checkpoint_secs: f64,
    /// `total_secs / clean_secs` — the headline inflation number.
    pub inflation: f64,
    /// Final residual (Execute mode, successful run).
    pub residual: Option<f64>,
    /// The fault that ended the campaign, when it did not complete.
    pub fatal: Option<MpiFault>,
}

impl ResilienceReport {
    /// Check the protocol-level invariants a campaign outcome must satisfy,
    /// independent of timing: the model checker's safety predicate.
    ///
    /// Returns `Err` with a human-readable description on the first violated
    /// invariant:
    /// - attempts never exceed the configured budget;
    /// - a completed campaign carries no fatal fault and never accepted a
    ///   residual at or above the limit (no silent-data-corruption
    ///   acceptance; NaN residuals are violations);
    /// - an abandoned campaign says why (a fatal fault is recorded);
    /// - crash recovery never consumes more spares than `spares` provided.
    pub fn check_invariants(&self, rc: &ResilienceConfig, spares: u32) -> Result<(), String> {
        if self.attempts > rc.max_attempts {
            return Err(format!(
                "attempt budget exceeded: {} attempts > max_attempts {}",
                self.attempts, rc.max_attempts
            ));
        }
        if self.completed {
            if let Some(f) = &self.fatal {
                return Err(format!("completed run carries a fatal fault: {f}"));
            }
            if let Some(r) = self.residual {
                // A NaN residual must be rejected too, hence no plain `<`.
                if r.is_nan() || r >= rc.residual_limit {
                    return Err(format!(
                        "SDC accepted: completed with residual {r} >= limit {}",
                        rc.residual_limit
                    ));
                }
            }
        } else if self.fatal.is_none() {
            return Err("abandoned campaign records no fatal fault".to_string());
        }
        if self.spares_used > spares {
            return Err(format!(
                "spare over-consumption: used {} of {} spares",
                self.spares_used, spares
            ));
        }
        Ok(())
    }
}

/// Run HPL to completion under a fault plan, surviving node crashes, lossy
/// links and detected SDC by checkpoint/restart with spare nodes.
///
/// `base.topology` must contain the job's nodes *plus* any spares; ranks are
/// initially mapped onto physical nodes `0..L` and crashes promote spares
/// `L..` into the map one at a time. The fault plan addresses physical
/// nodes, so faults scheduled on spare nodes strike only once the spare is
/// in service (and faults on dead nodes die with them).
pub fn run_hpl_resilient(
    base: JobSpec,
    cfg: HplConfig,
    rc: &ResilienceConfig,
    plan: &FaultPlan,
) -> ResilienceReport {
    try_run_hpl_resilient(base, cfg, rc, plan).expect("fault-free baseline must complete")
}

/// [`run_hpl_resilient`] surfacing a baseline failure as a typed error: the
/// fault-free reference run has no fault plan, so it can only fail on a
/// simulator-level error — most usefully a watchdog
/// [`EventBudgetExhausted`](des::SimError::EventBudgetExhausted) on a
/// runaway cell.
pub fn try_run_hpl_resilient(
    base: JobSpec,
    cfg: HplConfig,
    rc: &ResilienceConfig,
    plan: &FaultPlan,
) -> Result<ResilienceReport, MpiFault> {
    let logical = base.ranks.div_ceil(base.ranks_per_node);
    let physical = base.topology.nodes();
    assert!(logical <= physical, "topology must hold the job (+ spares)");

    // Fault-free baseline for the inflation number.
    let clean_secs = {
        let spec = base.clone().with_fault_plan(FaultPlan::none());
        let run = run_mpi(spec, move |mut r| async move {
            let t0 = r.now();
            hpl_rank_ckpt(&mut r, &cfg, None).await;
            let dt = (r.now() - t0).as_secs_f64();
            r.allreduce(ReduceOp::Max, vec![dt]).await[0]
        })?;
        run.results[0]
    };

    let store = Arc::new(Mutex::new(CkptStore::new(base.ranks as usize)));
    let mut plan = plan.clone();
    let mut map: Vec<u32> = (0..logical).collect();
    let mut next_spare = logical;
    let overhead = rc.restart_overhead.as_secs_f64();

    let mut report = ResilienceReport {
        completed: false,
        attempts: 0,
        crashes: 0,
        timeouts: 0,
        sdc_detected: 0,
        spares_used: 0,
        total_secs: 0.0,
        clean_secs,
        checkpoint_secs: 0.0,
        inflation: f64::INFINITY,
        residual: None,
        fatal: None,
    };

    while report.attempts < rc.max_attempts {
        report.attempts += 1;
        let start_k = store.lock().unwrap().last_complete();
        let hooks = (rc.ckpt_every_panels > 0).then(|| CkptHooks {
            every: rc.ckpt_every_panels,
            write_bw_bytes: rc.write_bw_bytes,
            start_k,
            store: Arc::clone(&store),
            apply_bit_flips: rc.apply_bit_flips,
        });
        let spec = base.clone().with_fault_plan(plan.clone()).with_node_map(map.clone());
        let run = run_mpi(spec, move |mut r| {
            let hooks = hooks.clone();
            async move {
                let t0 = r.now();
                let residual = hpl_rank_ckpt(&mut r, &cfg, hooks.as_ref()).await;
                let dt = (r.now() - t0).as_secs_f64();
                (r.allreduce(ReduceOp::Max, vec![dt]).await[0], residual)
            }
        });
        match run {
            Ok(done) => {
                let (elapsed, residual) = done.results[0];
                report.total_secs += elapsed;
                if let Some(x) = residual {
                    // NaN-safe: anything not provably below the limit
                    // (including NaN from corrupted arithmetic) is SDC.
                    #[allow(clippy::neg_cmp_op_on_partial_ord)]
                    if !(x < rc.residual_limit) {
                        // The residual caught silent corruption: roll back.
                        report.sdc_detected += 1;
                        report.total_secs += overhead;
                        plan = plan.shifted(SimTime::from_secs_f64(elapsed) + rc.restart_overhead);
                        continue;
                    }
                }
                report.completed = true;
                report.residual = residual;
                break;
            }
            Err(MpiFault::RankDied { node, at, .. }) => {
                report.crashes += 1;
                report.total_secs += at.as_secs_f64() + overhead;
                plan = plan.without_node(node).shifted(at + rc.restart_overhead);
                if next_spare >= physical {
                    report.fatal = Some(MpiFault::RankDied { node, at, rank: u32::MAX });
                    break; // out of spares
                }
                let li = map.iter().position(|&p| p == node).expect("crashed node must be mapped");
                map[li] = next_spare;
                next_spare += 1;
                report.spares_used += 1;
            }
            Err(MpiFault::Timeout { at, .. }) => {
                // The node survives; retry from the last checkpoint once the
                // network recovers.
                report.timeouts += 1;
                report.total_secs += at.as_secs_f64() + overhead;
                plan = plan.shifted(at + rc.restart_overhead);
            }
            Err(other) => {
                report.fatal = Some(other);
                break;
            }
        }
    }

    // Modelled checkpoint write time: rounds × the slowest rank's write.
    let nblk = cfg.n.div_ceil(cfg.nb);
    let max_rank_blocks = nblk.div_ceil(base.ranks as usize);
    let per_round = (max_rank_blocks * cfg.n * cfg.nb * 8) as f64 / rc.write_bw_bytes;
    report.checkpoint_secs = store.lock().unwrap().rounds() as f64 * per_round;
    if report.completed && clean_secs > 0.0 {
        report.inflation = report.total_secs / clean_secs;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::Mode;
    use des::{FaultEvent, FaultKind};
    use netsim::TopologySpec;
    use soc_arch::Platform;

    fn base(ranks: u32, physical: u32) -> JobSpec {
        JobSpec::new(Platform::tegra2(), ranks)
            .with_topology(TopologySpec::Star { nodes: physical })
    }

    // Execute-mode HPL advances virtual time for *communication only*, so
    // the small test jobs last about a millisecond of virtual time
    // (n=32: ~0.72 ms, n=48: ~1.07 ms, n=64: ~1.50 ms for 2 ranks;
    // checkpoint writes add blocks*n*nb*8/write_bw each). Fault times are
    // therefore scheduled in microseconds.
    fn crash(node: u32, us: u64) -> FaultEvent {
        FaultEvent { at: SimTime::from_micros(us), kind: FaultKind::NodeCrash { node } }
    }

    #[test]
    fn clean_plan_completes_first_try() {
        let rep = run_hpl_resilient(
            base(2, 2),
            HplConfig::small(32, 8),
            &ResilienceConfig::default(),
            &FaultPlan::none(),
        );
        assert!(rep.completed);
        assert_eq!(rep.attempts, 1);
        assert_eq!((rep.crashes, rep.timeouts, rep.spares_used), (0, 0, 0));
        assert!(rep.residual.unwrap() < 16.0);
        assert!(rep.inflation >= 1.0);
    }

    #[test]
    fn crash_recovers_on_spare_and_still_verifies() {
        // 2 ranks on nodes {0,1}, node 2 spare. Node 1 dies mid-run; the
        // job must finish on {0,2} with a correct answer.
        let plan = FaultPlan::from_events(vec![crash(1, 600)]);
        let rep = run_hpl_resilient(
            base(2, 3),
            HplConfig::small(48, 8),
            &ResilienceConfig::default(),
            &plan,
        );
        assert!(rep.completed, "fatal: {:?}", rep.fatal);
        assert_eq!(rep.crashes, 1);
        assert_eq!(rep.spares_used, 1);
        assert_eq!(rep.attempts, 2);
        assert!(rep.residual.unwrap() < 16.0, "residual {:?}", rep.residual);
        assert!(rep.inflation > 1.0);
    }

    #[test]
    fn invariant_checks_accept_real_outcomes_and_reject_forged_ones() {
        let rc = ResilienceConfig::default();
        let rep = run_hpl_resilient(base(2, 3), HplConfig::small(32, 8), &rc, &FaultPlan::none());
        assert_eq!(rep.check_invariants(&rc, 1), Ok(()));

        // Forged outcomes each trip exactly the invariant they violate.
        let mut over = rep.clone();
        over.attempts = rc.max_attempts + 1;
        assert!(over.check_invariants(&rc, 1).unwrap_err().contains("attempt budget"));

        let mut sdc = rep.clone();
        sdc.residual = Some(f64::NAN);
        assert!(sdc.check_invariants(&rc, 1).unwrap_err().contains("SDC accepted"));

        let mut silent = rep.clone();
        silent.completed = false;
        silent.fatal = None;
        assert!(silent.check_invariants(&rc, 1).unwrap_err().contains("no fatal fault"));

        let mut greedy = rep.clone();
        greedy.spares_used = 2;
        assert!(greedy.check_invariants(&rc, 1).unwrap_err().contains("spare over-consumption"));
    }

    #[test]
    fn out_of_spares_is_fatal() {
        // One spare (nodes {0,1} + spare 2). Attempt 1 loses node 0 at
        // 300 µs and promotes the spare; after the plan shifts by
        // 300 µs + 100 µs overhead, the node-1 crash lands at 500 µs into
        // attempt 2 and there is no spare left.
        let plan = FaultPlan::from_events(vec![crash(0, 300), crash(1, 900)]);
        let rep = run_hpl_resilient(
            base(2, 3),
            HplConfig::small(32, 8),
            &ResilienceConfig {
                restart_overhead: SimTime::from_micros(100),
                ..ResilienceConfig::default()
            },
            &plan,
        );
        assert!(!rep.completed);
        assert_eq!(rep.crashes, 2);
        assert_eq!(rep.spares_used, 1);
        assert!(matches!(rep.fatal, Some(MpiFault::RankDied { .. })));
    }

    #[test]
    fn checkpoint_restart_completes_where_scratch_restart_fails() {
        // The same fault plan, two policies. A fresh crash lands roughly a
        // millisecond into every attempt window, so restarting from scratch
        // (every = 0, full run ~1.5 ms) never gets a long-enough crash-free
        // window and exhausts its attempts. With checkpoints every two
        // panels the job ratchets past the crashes and completes.
        let plan = FaultPlan::from_events(vec![crash(1, 1000), crash(2, 2100), crash(3, 3200)]);
        let cfg = HplConfig::small(64, 8);
        let rc = ResilienceConfig {
            ckpt_every_panels: 2,
            write_bw_bytes: 200e6,
            restart_overhead: SimTime::from_micros(100),
            max_attempts: 3,
            ..ResilienceConfig::default()
        };
        let with = run_hpl_resilient(base(2, 8), cfg, &rc, &plan);
        assert!(with.completed, "checkpointing run failed: {:?}", with.fatal);
        assert!(with.crashes >= 1, "{with:?}");
        assert!(with.checkpoint_secs > 0.0);
        assert!(with.residual.unwrap() < 16.0);
        assert!(with.inflation > 1.0);

        let without = run_hpl_resilient(
            base(2, 8),
            cfg,
            &ResilienceConfig { ckpt_every_panels: 0, ..rc },
            &plan,
        );
        assert!(!without.completed, "{without:?}");
        assert_eq!(without.attempts, rc.max_attempts);
    }

    #[test]
    fn bit_flip_is_detected_and_recovered() {
        // One flip after the (only) checkpoint: the first pass produces a
        // wrong answer, the residual flags it, and the rollback completes
        // cleanly because the shifted plan no longer contains the flip.
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at: SimTime::from_micros(1800),
            kind: FaultKind::BitFlip { node: 0 },
        }]);
        let rep = run_hpl_resilient(
            base(2, 2),
            HplConfig::small(48, 8),
            &ResilienceConfig { ckpt_every_panels: 2, ..ResilienceConfig::default() },
            &plan,
        );
        assert!(rep.completed, "fatal: {:?}", rep.fatal);
        assert_eq!(rep.sdc_detected, 1, "the flip must be caught: {rep:?}");
        assert!(rep.residual.unwrap() < 16.0);
        assert!(rep.attempts >= 2);
    }

    #[test]
    fn model_mode_campaign_reports_inflation() {
        // The Model-mode job lasts ~65 ms of virtual time; crash mid-run.
        let plan = FaultPlan::from_events(vec![crash(1, 30_000)]);
        let rep = run_hpl_resilient(
            base(4, 6),
            HplConfig { n: 512, nb: 64, mode: Mode::Model },
            &ResilienceConfig { apply_bit_flips: false, ..ResilienceConfig::default() },
            &plan,
        );
        assert!(rep.completed, "fatal: {:?}", rep.fatal);
        assert!(rep.residual.is_none());
        assert!(rep.inflation > 1.0);
        assert!(rep.total_secs > rep.clean_secs);
    }
}
