//! SPECFEM3D (Table 3): "3D seismic wave propagation (spectral element
//! method)". Implemented as a real 1-D elastic-wave spectral-element code
//! with Gauss–Lobatto–Legendre (GLL) quadrature: degree-4 elements, lumped
//! (diagonal) mass matrix, central-difference time stepping, and a domain
//! decomposition that shares exactly one node between neighbouring ranks.
//!
//! This carries SPECFEM3D's performance signature into the Fig 6 scaling
//! study: dense element-local arithmetic (matrix–vector products per
//! element) against a nearest-neighbour exchange of a *single* value per
//! step — which is why it is the best scaler of the application set
//! ("SPECFEM3D shows good strong scaling").

use simmpi::{JobSpec, Msg, Rank, ReduceOp};
use soc_arch::{AccessPattern, WorkProfile};

use crate::mode::Mode;

/// GLL points per element (degree 4).
pub const NGLL: usize = 5;

/// GLL quadrature points on [-1, 1] for N = 4.
pub fn gll_points() -> [f64; NGLL] {
    let a = (3.0f64 / 7.0).sqrt();
    [-1.0, -a, 0.0, a, 1.0]
}

/// GLL quadrature weights for N = 4.
pub fn gll_weights() -> [f64; NGLL] {
    [1.0 / 10.0, 49.0 / 90.0, 32.0 / 45.0, 49.0 / 90.0, 1.0 / 10.0]
}

/// Lagrange derivative matrix `D[q][j] = l_j'(ξ_q)` on the GLL points.
pub fn derivative_matrix() -> [[f64; NGLL]; NGLL] {
    let xi = gll_points();
    let mut d = [[0.0; NGLL]; NGLL];
    for q in 0..NGLL {
        for j in 0..NGLL {
            if q == j {
                let mut sum = 0.0;
                for k in 0..NGLL {
                    if k != j {
                        sum += 1.0 / (xi[j] - xi[k]);
                    }
                }
                d[q][j] = sum;
            } else {
                let mut num = 1.0;
                let mut den = 1.0;
                for k in 0..NGLL {
                    if k != j && k != q {
                        num *= xi[q] - xi[k];
                    }
                    if k != j {
                        den *= xi[j] - xi[k];
                    }
                }
                d[q][j] = num / den;
            }
        }
    }
    d
}

/// SEM configuration.
#[derive(Clone, Copy, Debug)]
pub struct SemConfig {
    /// Total number of elements.
    pub elements: usize,
    /// Domain length.
    pub length: f64,
    /// Shear modulus μ.
    pub mu: f64,
    /// Density ρ.
    pub rho: f64,
    /// Time step (must satisfy the CFL bound for the mesh).
    pub dt: f64,
    /// Number of time steps.
    pub steps: usize,
    /// Execution mode.
    pub mode: Mode,
    /// Model-mode flops per element per step. The Execute-mode 1-D elements
    /// cost ~130 flops; the paper's SPECFEM3D runs 3-D elements
    /// (5³ GLL points × 3 displacement components), ~17k flops each — use
    /// that for the Fig 6 reproduction.
    pub model_flops_per_element: f64,
    /// Model-mode halo message size (a 3-D face of GLL points).
    pub model_halo_bytes: u64,
}

impl SemConfig {
    /// Small Execute-mode configuration for tests.
    pub fn small() -> SemConfig {
        SemConfig {
            elements: 64,
            length: 64.0,
            mu: 1.0,
            rho: 1.0,
            dt: 0.02,
            steps: 100,
            mode: Mode::Execute,
            model_flops_per_element: (4 * NGLL * NGLL + 6 * NGLL) as f64,
            model_halo_bytes: 8,
        }
    }

    /// The Fig 6 strong-scaling input ("an input set that fits in the memory
    /// of a single node"), Model mode.
    pub fn fig6() -> SemConfig {
        SemConfig {
            elements: 38_400,
            length: 38_400.0,
            mu: 1.0,
            rho: 1.0,
            dt: 0.02,
            steps: 40,
            mode: Mode::Model,
            model_flops_per_element: 17_000.0,
            model_halo_bytes: 8_192,
        }
    }

    /// Wave speed `c = sqrt(mu / rho)`.
    pub fn wave_speed(&self) -> f64 {
        (self.mu / self.rho).sqrt()
    }
}

/// One rank's share of the mesh: `nel` elements, `nel * (NGLL-1) + 1` nodes,
/// the first/last node shared with the neighbour rank.
struct SemDomain {
    nel: usize,
    /// Global x of the first local node.
    x0: f64,
    h: f64, // element length
    u: Vec<f64>,
    u_old: Vec<f64>,
    /// Assembled diagonal mass (shared nodes include both sides).
    mass: Vec<f64>,
    d: [[f64; NGLL]; NGLL],
    w: [f64; NGLL],
}

impl SemDomain {
    fn nodes(nel: usize) -> usize {
        nel * (NGLL - 1) + 1
    }

    fn node_x(&self, i: usize) -> f64 {
        let xi = gll_points();
        let e = i / (NGLL - 1);
        let l = i % (NGLL - 1);
        self.x0 + e as f64 * self.h + (xi[l] + 1.0) * self.h / 2.0
    }

    fn init(cfg: &SemConfig, el0: usize, nel: usize) -> SemDomain {
        let h = cfg.length / cfg.elements as f64;
        let n = Self::nodes(nel);
        let mut dom = SemDomain {
            nel,
            x0: el0 as f64 * h,
            h,
            u: vec![0.0; n],
            u_old: vec![0.0; n],
            mass: vec![0.0; n],
            d: derivative_matrix(),
            w: gll_weights(),
        };
        // Lumped mass assembly: M_i += w_l * rho * J per element.
        let jac = h / 2.0;
        for e in 0..nel {
            for l in 0..NGLL {
                dom.mass[e * (NGLL - 1) + l] += dom.w[l] * cfg.rho * jac;
            }
        }
        // Initial condition: a Gaussian displacement pulse at the domain
        // centre (both u and u_old, i.e. zero initial velocity).
        let centre = cfg.length / 2.0;
        let sigma = cfg.length / 40.0;
        for i in 0..n {
            let x = dom.node_x(i);
            let g = (-(x - centre) * (x - centre) / (2.0 * sigma * sigma)).exp();
            dom.u[i] = g;
            dom.u_old[i] = g;
        }
        dom
    }

    /// Internal elastic force `f = -K u` (unassembled at the rank
    /// boundaries; the caller exchanges and adds the neighbour parts).
    fn internal_force(&self, cfg: &SemConfig) -> Vec<f64> {
        let n = self.u.len();
        let jac = self.h / 2.0;
        let mut f = vec![0.0; n];
        for e in 0..self.nel {
            let base = e * (NGLL - 1);
            // Strain at each quadrature point: du/dx(ξ_q) = Σ_j D[q][j] u_j / J.
            let mut dudx = [0.0; NGLL];
            for q in 0..NGLL {
                let mut s = 0.0;
                for j in 0..NGLL {
                    s += self.d[q][j] * self.u[base + j];
                }
                dudx[q] = s / jac;
            }
            // f_i -= Σ_q w_q μ u'(ξ_q) l_i'(ξ_q) (J / J) — the J from the
            // integral cancels one 1/J from the test-function derivative.
            for i in 0..NGLL {
                let mut s = 0.0;
                for q in 0..NGLL {
                    s += self.w[q] * cfg.mu * dudx[q] * self.d[q][i];
                }
                f[base + i] -= s;
            }
        }
        f
    }

    /// Elastic + kinetic energy (velocity via central difference).
    /// `skip_first_node` avoids double-counting the node shared with the
    /// left neighbour rank when energies are summed globally.
    fn energy(&self, cfg: &SemConfig, u_new: &[f64], dt: f64, skip_first_node: bool) -> f64 {
        let jac = self.h / 2.0;
        let mut pe = 0.0;
        for e in 0..self.nel {
            let base = e * (NGLL - 1);
            for q in 0..NGLL {
                let mut s = 0.0;
                for j in 0..NGLL {
                    s += self.d[q][j] * self.u[base + j];
                }
                let strain = s / jac;
                pe += 0.5 * self.w[q] * cfg.mu * strain * strain * jac;
            }
        }
        let mut ke = 0.0;
        let start = usize::from(skip_first_node);
        for i in start..self.u.len() {
            let v = (u_new[i] - self.u_old[i]) / (2.0 * dt);
            ke += 0.5 * self.mass[i] * v * v;
        }
        pe + ke
    }
}

const TAG_FORCE: u32 = 21;
const TAG_MASS: u32 = 22;

/// The per-rank SEM program; returns the final (local) energy in Execute
/// mode, 0.0 in Model mode.
pub async fn sem_rank(r: &mut Rank, cfg: &SemConfig) -> f64 {
    let p = r.size() as usize;
    let me = r.rank() as usize;
    let el0 = me * cfg.elements / p;
    let el1 = (me + 1) * cfg.elements / p;
    let nel = el1 - el0;
    let left = (me > 0).then(|| me as u32 - 1);
    let right = (me < p - 1).then(|| me as u32 + 1);

    let mut dom = cfg.mode.carries_data().then(|| SemDomain::init(cfg, el0, nel));

    // Assemble the shared-node mass across rank boundaries once.
    if let Some(d) = &mut dom {
        let last = d.mass.len() - 1;
        if let Some(rr) = right {
            let got = r.sendrecv(rr, TAG_MASS, Msg::from_f64s(&[d.mass[last]]), rr, TAG_MASS).await;
            d.mass[last] += got.to_f64s()[0];
        }
        if let Some(ll) = left {
            let got = r.sendrecv(ll, TAG_MASS, Msg::from_f64s(&[d.mass[0]]), ll, TAG_MASS).await;
            d.mass[0] += got.to_f64s()[0];
        }
    } else if p > 1 {
        if let Some(rr) = right {
            r.sendrecv(rr, TAG_MASS, Msg::size_only(8), rr, TAG_MASS).await;
        }
        if let Some(ll) = left {
            r.sendrecv(ll, TAG_MASS, Msg::size_only(8), ll, TAG_MASS).await;
        }
    }

    // Model-mode per-step cost: two small dense mat-vecs per element.
    let step_profile = WorkProfile::new(
        "sem-step",
        nel as f64 * cfg.model_flops_per_element,
        nel as f64 * cfg.model_flops_per_element * 0.15,
        AccessPattern::LocalityRich,
    );

    let mut energy = 0.0;
    for _ in 0..cfg.steps {
        match &mut dom {
            Some(d) => {
                let mut f = d.internal_force(cfg);
                let last = f.len() - 1;
                // Assemble boundary forces with the neighbours.
                if let Some(rr) = right {
                    let got =
                        r.sendrecv(rr, TAG_FORCE, Msg::from_f64s(&[f[last]]), rr, TAG_FORCE).await;
                    f[last] += got.to_f64s()[0];
                }
                if let Some(ll) = left {
                    let got =
                        r.sendrecv(ll, TAG_FORCE, Msg::from_f64s(&[f[0]]), ll, TAG_FORCE).await;
                    f[0] += got.to_f64s()[0];
                }
                // Central difference update.
                let mut u_new = vec![0.0; f.len()];
                for i in 0..f.len() {
                    u_new[i] = 2.0 * d.u[i] - d.u_old[i] + cfg.dt * cfg.dt * f[i] / d.mass[i];
                }
                energy = d.energy(cfg, &u_new, cfg.dt, left.is_some());
                d.u_old = std::mem::replace(&mut d.u, u_new);
            }
            None => {
                if let Some(rr) = right {
                    r.sendrecv(rr, TAG_FORCE, Msg::size_only(cfg.model_halo_bytes), rr, TAG_FORCE)
                        .await;
                }
                if let Some(ll) = left {
                    r.sendrecv(ll, TAG_FORCE, Msg::size_only(cfg.model_halo_bytes), ll, TAG_FORCE)
                        .await;
                }
                r.compute(&step_profile).await;
            }
        }
    }
    energy
}

/// Run the SEM code; returns `(elapsed_seconds, global_energy)`, or the
/// fault that stopped the run.
pub fn try_run_sem(spec: JobSpec, cfg: SemConfig) -> Result<(f64, f64), simmpi::MpiFault> {
    let run = simmpi::run_mpi(spec, move |mut r| async move {
        let t0 = r.now();
        let e = sem_rank(&mut r, &cfg).await;
        r.barrier().await;
        let dt = (r.now() - t0).as_secs_f64();
        let tot = r.allreduce(ReduceOp::Sum, vec![e]).await;
        (dt, tot[0])
    })?;
    Ok((run.results.iter().map(|x| x.0).fold(0.0, f64::max), run.results[0].1))
}

/// [`try_run_sem`] for callers on a clean spec.
pub fn run_sem(spec: JobSpec, cfg: SemConfig) -> (f64, f64) {
    try_run_sem(spec, cfg).expect("SEM run failed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_arch::Platform;

    fn spec(p: u32) -> JobSpec {
        JobSpec::new(Platform::tegra2(), p)
    }

    #[test]
    fn derivative_matrix_differentiates_polynomials_exactly() {
        // D must be exact for polynomials of degree <= 4 at the GLL points.
        let xi = gll_points();
        let d = derivative_matrix();
        // f(x) = x^3 - 2x: f'(x) = 3x^2 - 2.
        for q in 0..NGLL {
            let mut got = 0.0;
            for j in 0..NGLL {
                got += d[q][j] * (xi[j].powi(3) - 2.0 * xi[j]);
            }
            let want = 3.0 * xi[q] * xi[q] - 2.0;
            assert!((got - want).abs() < 1e-12, "q={q}: {got} vs {want}");
        }
    }

    #[test]
    fn gll_weights_integrate_constants() {
        // Σ w = 2 (length of [-1,1]).
        let s: f64 = gll_weights().iter().sum();
        assert!((s - 2.0).abs() < 1e-14);
    }

    #[test]
    fn energy_is_approximately_conserved() {
        let cfg = SemConfig::small();
        let (_, e_end) = run_sem(spec(1), cfg);
        let (_, e_start) = run_sem(spec(1), SemConfig { steps: 1, ..cfg });
        let drift = (e_end - e_start).abs() / e_start;
        assert!(drift < 0.02, "energy drift {drift} ({e_start} -> {e_end})");
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let cfg = SemConfig::small();
        let (_, e1) = run_sem(spec(1), cfg);
        let (_, e4) = run_sem(spec(4), cfg);
        assert!((e1 - e4).abs() < 1e-12 * e1.abs().max(1.0), "{e1} vs {e4}");
    }

    #[test]
    fn pulse_travels_at_the_wave_speed() {
        // Track the right-going pulse peak: after T steps it should sit near
        // centre + c*T*dt.
        let cfg = SemConfig { steps: 200, ..SemConfig::small() };
        let run = simmpi::run_mpi(spec(1), move |r| async move {
            let _ = r;
            let mut d = SemDomain::init(&cfg, 0, cfg.elements);
            for _ in 0..cfg.steps {
                let f = d.internal_force(&cfg);
                let mut u_new = vec![0.0; f.len()];
                for i in 0..f.len() {
                    u_new[i] = 2.0 * d.u[i] - d.u_old[i] + cfg.dt * cfg.dt * f[i] / d.mass[i];
                }
                d.u_old = std::mem::replace(&mut d.u, u_new);
            }
            // Find the peak right of centre.
            let n = d.u.len();
            let (mut best, mut best_x) = (f64::MIN, 0.0);
            for i in n / 2..n {
                if d.u[i] > best {
                    best = d.u[i];
                    best_x = d.node_x(i);
                }
            }
            best_x
        })
        .unwrap();
        let expect = cfg.length / 2.0 + cfg.wave_speed() * cfg.steps as f64 * cfg.dt;
        let err = (run.results[0] - expect).abs();
        assert!(err < 2.0, "peak at {} expected {expect}", run.results[0]);
    }

    #[test]
    fn model_mode_scales_nearly_ideally() {
        // SPECFEM3D's signature: compute-dense elements + tiny halos.
        let cfg = SemConfig { steps: 5, ..SemConfig::fig6() };
        let (t4, _) = run_sem(spec(4), cfg);
        let (t16, _) = run_sem(spec(16), cfg);
        let s = t4 / t16;
        assert!(s > 3.0, "4->16 speedup {s} should be near 4");
    }
}
