//! Calibration from physical reliability figures to virtual-time fault
//! rates.
//!
//! The §6.3 reliability argument is expressed in *years* (Google's 4-20%
//! annual per-DIMM incidence), but a simulated HPL run lasts virtual
//! *seconds*. Injecting the physical rates verbatim would make every
//! simulated run fault-free and the resilience machinery untestable, so the
//! experiments compress time: an **acceleration factor** maps "one simulated
//! second" to many machine-hours of exposure, preserving the *relative*
//! risk across the Google incidence range while making faults visible at
//! simulation scale.

use des::{FaultRates, SimTime};

use crate::reliability::EccRisk;

/// Calibration from an [`EccRisk`] model to per-virtual-second
/// [`FaultRates`] for the fault-injection layer.
#[derive(Clone, Copy, Debug)]
pub struct FaultCalibration {
    /// How many seconds of physical exposure one virtual second represents.
    /// 1.0 simulates real time (faults essentially never strike);
    /// the resilience experiments use ~1e6 (one virtual second ≈ 11.6 days).
    pub acceleration: f64,
    /// Fraction of memory errors severe enough to crash the node rather
    /// than silently corrupt data. Field studies attribute a minority of
    /// DRAM events to machine checks; the rest surface (if at all) as SDC.
    pub crash_fraction: f64,
    /// Link-degradation events per node per physical year (transient cable /
    /// switch brownouts; not part of the DIMM study, modelled coarsely).
    pub degrade_per_node_year: f64,
    /// Loss probability while a link is degraded.
    pub degrade_loss: f64,
    /// How long a degradation window lasts, in virtual time.
    pub degrade_duration: SimTime,
}

impl Default for FaultCalibration {
    fn default() -> FaultCalibration {
        FaultCalibration {
            acceleration: 1e6,
            crash_fraction: 0.1,
            degrade_per_node_year: 2.0,
            degrade_loss: 0.3,
            degrade_duration: SimTime::from_millis(50),
        }
    }
}

impl FaultCalibration {
    /// Per-node, per-virtual-second fault rates for a cluster whose DRAM
    /// reliability matches `risk`.
    ///
    /// The per-node memory-event rate is `lambda_year * dimms_per_node`
    /// (independent DIMMs), split into crashes and bit-flips by
    /// `crash_fraction`, then compressed by `acceleration`.
    pub fn rates(&self, risk: &EccRisk) -> FaultRates {
        const SECS_PER_YEAR: f64 = 365.0 * 24.0 * 3600.0;
        let node_events_year = risk.lambda_year() * risk.dimms_per_node as f64;
        let node_events_sec = node_events_year / SECS_PER_YEAR * self.acceleration;
        FaultRates {
            crash_per_node_sec: node_events_sec * self.crash_fraction,
            bitflip_per_node_sec: node_events_sec * (1.0 - self.crash_fraction),
            degrade_per_node_sec: self.degrade_per_node_year / SECS_PER_YEAR * self.acceleration,
            degrade_loss: self.degrade_loss,
            degrade_duration: self.degrade_duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::GOOGLE_ANNUAL_INCIDENCE;

    #[test]
    fn rates_scale_with_incidence_and_acceleration() {
        let cal = FaultCalibration::default();
        let lo = cal.rates(&EccRisk::tibidabo(GOOGLE_ANNUAL_INCIDENCE.0));
        let hi = cal.rates(&EccRisk::tibidabo(GOOGLE_ANNUAL_INCIDENCE.1));
        assert!(hi.crash_per_node_sec > lo.crash_per_node_sec);
        assert!(hi.bitflip_per_node_sec > lo.bitflip_per_node_sec);

        let slow = FaultCalibration { acceleration: 1.0, ..cal };
        let real = slow.rates(&EccRisk::tibidabo(GOOGLE_ANNUAL_INCIDENCE.1));
        // At real time the per-second rates are negligible (paper-scale
        // incidence is a per-year figure).
        assert!(real.crash_per_node_sec < 1e-8);
        assert!(
            (real.crash_per_node_sec * cal.acceleration
                - cal.rates(&EccRisk::tibidabo(GOOGLE_ANNUAL_INCIDENCE.1)).crash_per_node_sec)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn crash_fraction_partitions_the_event_rate() {
        let cal = FaultCalibration { crash_fraction: 0.25, ..FaultCalibration::default() };
        let r = cal.rates(&EccRisk::tibidabo(0.1));
        let total = r.crash_per_node_sec + r.bitflip_per_node_sec;
        assert!((r.crash_per_node_sec / total - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_incidence_yields_zero_memory_faults() {
        let r = FaultCalibration::default().rates(&EccRisk::tibidabo(0.0));
        assert_eq!(r.crash_per_node_sec, 0.0);
        assert_eq!(r.bitflip_per_node_sec, 0.0);
    }
}
