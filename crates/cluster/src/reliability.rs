//! §6.3's first mobile-SoC limitation, quantified: "the memory controller
//! does not support ECC protection in the DRAM. A Google study in 2009 found
//! that, within a year, 4% to 20% of all DIMMs encounter a correctable
//! error... these figures suggest that a 1,500 node system, with 2 DIMMs per
//! node, has a 30% error probability on any given day."
//!
//! This module reproduces that arithmetic (Schroeder, Pinheiro & Weber,
//! "DRAM errors in the wild") and extends it into the design tool the
//! paper's argument implies: how large can an unprotected mobile-SoC cluster
//! grow before daily memory errors make it unusable?

use serde::{Deserialize, Serialize};

/// The Google field study's observed range of annual per-DIMM correctable-
/// error incidence (fraction of DIMMs affected per year).
pub const GOOGLE_ANNUAL_INCIDENCE: (f64, f64) = (0.04, 0.20);

/// DRAM-reliability model for a cluster without ECC.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EccRisk {
    /// Number of nodes.
    pub nodes: u32,
    /// DIMMs per node.
    pub dimms_per_node: u32,
    /// Annual per-DIMM error incidence (fraction of DIMMs hit per year).
    pub annual_incidence: f64,
}

impl EccRisk {
    /// The paper's §6.3 example system: 1,500 nodes × 2 DIMMs.
    pub fn paper_example(annual_incidence: f64) -> EccRisk {
        EccRisk { nodes: 1500, dimms_per_node: 2, annual_incidence }
    }

    /// Tibidabo-like risk (192 nodes × 1 DIMM-equivalent of mobile DRAM).
    pub fn tibidabo(annual_incidence: f64) -> EccRisk {
        EccRisk { nodes: 192, dimms_per_node: 1, annual_incidence }
    }

    /// Total DIMM count.
    pub fn dimms(&self) -> u64 {
        self.nodes as u64 * self.dimms_per_node as u64
    }

    /// Per-DIMM annual error rate: the rate of a Poisson process whose
    /// 1-year hit probability equals the incidence.
    ///
    /// Defined on the closed interval: incidence 0.0 gives rate 0 (errors
    /// never happen) and incidence 1.0 gives `+inf` (every DIMM errors
    /// immediately — `ln(0)` would otherwise leak a NaN into every caller).
    ///
    /// # Panics
    ///
    /// If `annual_incidence` is outside `[0, 1]` (including NaN).
    pub fn lambda_year(&self) -> f64 {
        assert!(
            (0.0..=1.0).contains(&self.annual_incidence),
            "annual_incidence must be in [0, 1], got {}",
            self.annual_incidence
        );
        -(1.0 - self.annual_incidence).ln()
    }

    /// Probability that at least one DIMM errors within `days`, assuming
    /// independent exponential arrivals at the annual incidence rate.
    ///
    /// Well-defined at the boundaries: zero exposure (no DIMMs, zero days,
    /// or zero incidence) gives 0.0 and an infinite rate gives 1.0, with no
    /// NaN from the `inf * 0` corner.
    pub fn error_probability(&self, days: f64) -> f64 {
        assert!(days >= 0.0, "days must be non-negative, got {days}");
        let lambda_day = self.lambda_year() / 365.0;
        let exposure = self.dimms() as f64 * days;
        if exposure == 0.0 || lambda_day == 0.0 {
            return 0.0;
        }
        if lambda_day.is_infinite() {
            return 1.0;
        }
        1.0 - (-lambda_day * exposure).exp()
    }

    /// Mean time between (uncorrected) memory errors anywhere in the
    /// machine, in days. `+inf` when errors cannot occur (zero incidence or
    /// no DIMMs); 0.0 at incidence 1.0.
    pub fn mtbe_days(&self) -> f64 {
        let lambda_day = self.lambda_year() / 365.0;
        if self.dimms() == 0 || lambda_day == 0.0 {
            return f64::INFINITY;
        }
        if lambda_day.is_infinite() {
            return 0.0;
        }
        1.0 / (lambda_day * self.dimms() as f64)
    }

    /// Largest node count keeping the daily error probability below
    /// `p_daily` (the inverse design question the paper's argument poses).
    /// `u32::MAX` when the incidence is 0 (any size is safe); 0 when the
    /// incidence is 1 (no size is).
    pub fn max_nodes_for_daily_risk(&self, p_daily: f64) -> u32 {
        assert!((0.0..1.0).contains(&p_daily), "p_daily must be in [0, 1), got {p_daily}");
        let lambda_day = self.lambda_year() / 365.0;
        if lambda_day == 0.0 {
            return u32::MAX;
        }
        if lambda_day.is_infinite() {
            return 0;
        }
        // 1 - exp(-lambda_day * dimms) <= p  =>  dimms <= -ln(1-p)/lambda.
        let dimms = -(1.0 - p_daily).ln() / lambda_day;
        (dimms / self.dimms_per_node as f64).floor().min(u32::MAX as f64) as u32
    }
}

/// One row of the risk table printed by the repro harness.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RiskRow {
    /// Cluster size in nodes.
    pub nodes: u32,
    /// Daily error probability at the low end of the Google range.
    pub daily_low: f64,
    /// Daily error probability at the high end.
    pub daily_high: f64,
}

/// Risk table over a range of cluster sizes (2 DIMMs/node).
pub fn risk_table(node_counts: &[u32]) -> Vec<RiskRow> {
    node_counts
        .iter()
        .map(|&nodes| {
            let lo =
                EccRisk { nodes, dimms_per_node: 2, annual_incidence: GOOGLE_ANNUAL_INCIDENCE.0 };
            let hi =
                EccRisk { nodes, dimms_per_node: 2, annual_incidence: GOOGLE_ANNUAL_INCIDENCE.1 };
            RiskRow {
                nodes,
                daily_low: lo.error_probability(1.0),
                daily_high: hi.error_probability(1.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thirty_percent_claim_reproduced() {
        // "a 1,500 node system, with 2 DIMMs per node, has a 30% error
        // probability on any given day" — this lands inside the Google
        // incidence range (it corresponds to ~4-5% annual incidence).
        let low = EccRisk::paper_example(GOOGLE_ANNUAL_INCIDENCE.0).error_probability(1.0);
        let high = EccRisk::paper_example(GOOGLE_ANNUAL_INCIDENCE.1).error_probability(1.0);
        assert!(low <= 0.30 && 0.30 <= high, "30% must be inside [{low}, {high}]");
        assert!((0.20..0.40).contains(&low), "low-end daily risk {low}");
    }

    #[test]
    fn risk_grows_with_nodes_and_time() {
        let small = EccRisk { nodes: 100, dimms_per_node: 2, annual_incidence: 0.1 };
        let big = EccRisk { nodes: 1000, dimms_per_node: 2, annual_incidence: 0.1 };
        assert!(big.error_probability(1.0) > small.error_probability(1.0));
        assert!(small.error_probability(7.0) > small.error_probability(1.0));
        // Probabilities stay in [0, 1].
        assert!(big.error_probability(10_000.0) <= 1.0);
        assert_eq!(small.error_probability(0.0), 0.0);
    }

    #[test]
    fn mtbe_is_consistent_with_daily_probability() {
        let r = EccRisk::tibidabo(0.1);
        // P(error within MTBE) = 1 - 1/e.
        let p = r.error_probability(r.mtbe_days());
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
    }

    #[test]
    fn inverse_design_question() {
        let r = EccRisk { nodes: 0, dimms_per_node: 2, annual_incidence: 0.2 };
        let n = r.max_nodes_for_daily_risk(0.01);
        // The answer must satisfy its own constraint...
        let check = EccRisk { nodes: n, dimms_per_node: 2, annual_incidence: 0.2 };
        assert!(check.error_probability(1.0) <= 0.01);
        // ...and adding nodes must violate it.
        let over = EccRisk { nodes: n + 1, dimms_per_node: 2, annual_incidence: 0.2 };
        assert!(over.error_probability(1.0) > 0.01);
    }

    #[test]
    fn zero_incidence_boundary() {
        let r = EccRisk { nodes: 1500, dimms_per_node: 2, annual_incidence: 0.0 };
        assert_eq!(r.lambda_year(), 0.0);
        assert_eq!(r.error_probability(365.0), 0.0);
        assert_eq!(r.mtbe_days(), f64::INFINITY);
        assert_eq!(r.max_nodes_for_daily_risk(0.3), u32::MAX);
        // p_daily = 0 with zero incidence is satisfiable everywhere, not 0/0.
        assert_eq!(r.max_nodes_for_daily_risk(0.0), u32::MAX);
    }

    #[test]
    fn certain_incidence_boundary() {
        let r = EccRisk { nodes: 1500, dimms_per_node: 2, annual_incidence: 1.0 };
        assert_eq!(r.lambda_year(), f64::INFINITY);
        // inf * 0 exposure must not produce NaN.
        assert_eq!(r.error_probability(0.0), 0.0);
        assert_eq!(r.error_probability(0.001), 1.0);
        assert_eq!(r.mtbe_days(), 0.0);
        assert_eq!(r.max_nodes_for_daily_risk(0.3), 0);
    }

    #[test]
    fn empty_machine_boundary() {
        let r = EccRisk { nodes: 0, dimms_per_node: 2, annual_incidence: 1.0 };
        assert_eq!(r.error_probability(100.0), 0.0);
        assert_eq!(r.mtbe_days(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "annual_incidence")]
    fn incidence_above_one_is_rejected() {
        EccRisk { nodes: 1, dimms_per_node: 1, annual_incidence: 1.5 }.error_probability(1.0);
    }

    #[test]
    #[should_panic(expected = "annual_incidence")]
    fn negative_incidence_is_rejected() {
        EccRisk { nodes: 1, dimms_per_node: 1, annual_incidence: -0.1 }.mtbe_days();
    }

    #[test]
    fn risk_table_is_monotone() {
        let t = risk_table(&[96, 192, 1500, 10_000]);
        assert!(t.windows(2).all(|w| w[1].daily_low > w[0].daily_low));
        assert!(t.iter().all(|r| r.daily_high >= r.daily_low));
    }
}
