//! Table 4: network bytes/FLOPS ratios — interconnect bandwidth divided by
//! peak FP64 performance, per platform, for three network classes.

use serde::{Deserialize, Serialize};
use soc_arch::Platform;

/// The network classes of Table 4.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NetClass {
    /// 1 Gbit Ethernet.
    GbE1,
    /// 10 Gbit Ethernet.
    GbE10,
    /// 40 Gbit InfiniBand.
    Ib40,
}

impl NetClass {
    /// All classes in Table 4 column order.
    pub const ALL: [NetClass; 3] = [NetClass::GbE1, NetClass::GbE10, NetClass::Ib40];

    /// Usable bandwidth in bytes/second.
    pub fn bw_bytes(self) -> f64 {
        match self {
            NetClass::GbE1 => 125e6,
            NetClass::GbE10 => 1.25e9,
            NetClass::Ib40 => 5e9,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NetClass::GbE1 => "1GbE",
            NetClass::GbE10 => "10GbE",
            NetClass::Ib40 => "40Gb InfiniBand",
        }
    }
}

/// One row of Table 4.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BalanceRow {
    /// Platform id.
    pub platform: String,
    /// bytes/FLOPS for each class in [`NetClass::ALL`] order.
    pub ratios: [f64; 3],
}

/// Bytes/FLOPS for one platform and network class ("FP64, excluding GPU").
pub fn bytes_per_flop(p: &Platform, net: NetClass) -> f64 {
    net.bw_bytes() / (p.soc.peak_gflops_max() * 1e9)
}

/// The full Table 4.
pub fn table4() -> Vec<BalanceRow> {
    Platform::table1()
        .iter()
        .map(|p| BalanceRow {
            platform: p.id.to_string(),
            ratios: [
                bytes_per_flop(p, NetClass::GbE1),
                bytes_per_flop(p, NetClass::GbE10),
                bytes_per_flop(p, NetClass::Ib40),
            ],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values_match_paper() {
        // Paper Table 4 (two decimal places).
        let expect = [
            ("tegra2", [0.06, 0.63, 2.50]),
            ("tegra3", [0.02, 0.24, 0.96]),
            ("exynos5250", [0.02, 0.18, 0.74]),
            ("i7-2760qm", [0.00, 0.02, 0.07]),
        ];
        for (row, (id, vals)) in table4().iter().zip(expect) {
            assert_eq!(row.platform, id);
            for (got, want) in row.ratios.iter().zip(vals) {
                assert!((got - want).abs() < 0.006, "{id}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn mobile_socs_have_server_class_balance_on_gbe() {
        // §4.1: "A 1GbE network interface for a Tegra 3 or Exynos 5250 has a
        // bytes/FLOPS ratio close to that of a dual-socket Intel Sandy
        // Bridge" (with 10GbE).
        let t3 = bytes_per_flop(&Platform::tegra3(), NetClass::GbE1);
        let snb_10g = bytes_per_flop(&Platform::core_i7_2760qm(), NetClass::GbE10) * 0.5; // dual socket
        assert!((t3 / snb_10g) > 1.0 && (t3 / snb_10g) < 4.0, "{t3} vs {snb_10g}");
    }

    #[test]
    fn faster_networks_raise_the_ratio() {
        for p in Platform::table1() {
            let r: Vec<f64> = NetClass::ALL.iter().map(|&n| bytes_per_flop(&p, n)).collect();
            assert!(r[0] < r[1] && r[1] < r[2]);
        }
    }
}
