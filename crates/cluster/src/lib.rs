//! # cluster — machine-level composition of the §4 experiments
//!
//! Puts the pieces together: a [`Machine`] bundles a node platform
//! (`soc-arch`), a per-node power model (`soc-power`), and an interconnect
//! (`netsim`), and produces ready-to-run `simmpi` job specs. [`job_energy`] /
//! [`green500`] turn a completed run into the §4 power and MFLOPS/W numbers,
//! and [`table4`] reproduces the paper's network-balance table.

#![warn(missing_docs)]

mod balance;
mod energy;
mod faults;
mod machine;
mod reliability;

pub use balance::{bytes_per_flop, table4, BalanceRow, NetClass};
pub use energy::{green500, job_energy, JobEnergy};
pub use faults::FaultCalibration;
pub use machine::Machine;
pub use reliability::{risk_table, EccRisk, RiskRow, GOOGLE_ANNUAL_INCIDENCE};
