//! Cluster machine models: the Tibidabo prototype (§4) and what-if variants.

use netsim::{NetModel, ProtocolModel, TopologySpec};
use simmpi::JobSpec;
use soc_arch::Platform;
use soc_power::PowerModel;

/// A complete cluster: homogeneous nodes + interconnect + power model.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Machine name.
    pub name: &'static str,
    /// Node platform.
    pub platform: Platform,
    /// Per-node wall power model.
    pub node_power: PowerModel,
    /// Interconnect topology.
    pub topology: TopologySpec,
    /// Default protocol stack.
    pub proto: ProtocolModel,
    /// Number of Ethernet switches.
    pub switches: u32,
    /// Power per switch, watts.
    pub switch_power_w: f64,
    /// Network model override for jobs on this machine (`None` = the
    /// process-wide default, see [`simmpi::default_net_model`]).
    pub net_model: Option<NetModel>,
}

impl Machine {
    /// Tibidabo (§4): "the first large-scale cluster to be deployed using
    /// multi-core ARM-based SoCs. Tibidabo has 192 nodes, each with an
    /// Nvidia Tegra 2 SoC on a SECO Q7 module... a hierarchical 1 GbE
    /// network built with 48-port 1 GbE switches, giving a bisection
    /// bandwidth of 8 Gb/s and a maximum latency of three hops."
    pub fn tibidabo() -> Machine {
        Machine {
            name: "Tibidabo",
            platform: Platform::tegra2(),
            node_power: PowerModel::tibidabo_node(),
            topology: TopologySpec::tibidabo(),
            proto: ProtocolModel::tcp_ip(),
            switches: 5, // 4 edge + 1 core
            switch_power_w: 25.0,
            net_model: None,
        }
    }

    /// A Tibidabo-like machine scaled past the prototype's 192 nodes: the
    /// same Tegra-2 node, TCP/IP stack, and hierarchical 48-port GbE tree,
    /// with enough edge switches for `nodes` (rounded up to a full edge).
    /// This is the §7 thought experiment — "what if Tibidabo were bigger" —
    /// and what `tibidabo_hpl --ranks N` uses for N > 192.
    pub fn tibidabo_scaled(nodes: u32) -> Machine {
        let edges = nodes.div_ceil(48).max(1);
        Machine {
            name: "Tibidabo (scaled)",
            platform: Platform::tegra2(),
            node_power: PowerModel::tibidabo_node(),
            topology: TopologySpec::Tree { edges, nodes_per_edge: 48, uplinks_per_edge: 4 },
            proto: ProtocolModel::tcp_ip(),
            switches: edges + 1,
            switch_power_w: 25.0,
            net_model: None,
        }
    }

    /// A hypothetical Tibidabo successor built from Arndale-class nodes
    /// (Exynos 5250), as §3's results invite.
    pub fn arndale_cluster(nodes: u32) -> Machine {
        Machine {
            name: "Arndale cluster (what-if)",
            platform: Platform::exynos5250(),
            node_power: PowerModel::exynos5250_devkit(),
            topology: TopologySpec::Star { nodes },
            proto: ProtocolModel::open_mx(),
            switches: nodes.div_ceil(48),
            switch_power_w: 25.0,
            net_model: None,
        }
    }

    /// A projected ARMv8 cluster (§6.3 / §7: the "descendants of today's
    /// mobile SoCs").
    pub fn armv8_cluster(nodes: u32) -> Machine {
        Machine {
            name: "ARMv8 cluster (projected)",
            platform: Platform::armv8_projection(),
            node_power: PowerModel::exynos5250_devkit(),
            topology: TopologySpec::Star { nodes },
            proto: ProtocolModel::open_mx(),
            switches: nodes.div_ceil(48),
            switch_power_w: 25.0,
            net_model: None,
        }
    }

    /// Pin this machine's jobs to `model` regardless of the process-wide
    /// default network model.
    pub fn with_net_model(mut self, model: Option<NetModel>) -> Machine {
        self.net_model = model;
        self
    }

    /// Total node count.
    pub fn nodes(&self) -> u32 {
        self.topology.nodes()
    }

    /// A `simmpi` job spec for `ranks` ranks on this machine at the node's
    /// maximum frequency.
    pub fn job(&self, ranks: u32) -> JobSpec {
        JobSpec::new(self.platform.clone(), ranks)
            .with_proto(self.proto)
            .with_topology(self.topology)
            .with_net_model(self.net_model)
    }

    /// Peak FP64 GFLOPS of `n` nodes at fmax.
    pub fn peak_gflops(&self, n: u32) -> f64 {
        self.platform.soc.peak_gflops_max() * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tibidabo_matches_section_4() {
        let m = Machine::tibidabo();
        assert_eq!(m.nodes(), 192);
        assert_eq!(m.platform.id, "tegra2");
        // Peak of 96 nodes = 192 GFLOPS (the 51%-of-peak denominator).
        assert!((m.peak_gflops(96) - 192.0).abs() < 1e-9);
    }

    #[test]
    fn job_spec_uses_machine_defaults() {
        let m = Machine::tibidabo();
        let j = m.job(96);
        assert_eq!(j.ranks, 96);
        assert_eq!(j.proto.name, "TCP/IP");
        assert_eq!(j.topology, TopologySpec::tibidabo());
        assert!(j.validate().is_ok());
        // No machine pins a model by default; with_net_model threads through.
        assert_eq!(j.net_model, None);
        let pinned = Machine::tibidabo().with_net_model(Some(NetModel::Flow));
        assert_eq!(pinned.job(4).net_model, Some(NetModel::Flow));
    }

    #[test]
    fn scaled_tibidabo_covers_requested_nodes() {
        let m = Machine::tibidabo_scaled(1024);
        assert!(m.nodes() >= 1024);
        assert_eq!(m.platform.id, "tegra2");
        assert_eq!(m.proto.name, "TCP/IP");
        assert!(m.job(1024).validate().is_ok());
        // At exactly the prototype's size the topology matches the real one.
        assert_eq!(Machine::tibidabo_scaled(192).topology, TopologySpec::tibidabo());
    }

    #[test]
    fn what_if_machines_are_buildable() {
        assert_eq!(Machine::arndale_cluster(64).nodes(), 64);
        assert_eq!(Machine::armv8_cluster(32).platform.id, "armv8-4c-2ghz");
    }
}
