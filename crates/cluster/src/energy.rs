//! Whole-cluster power and energy accounting for simulated jobs, feeding the
//! Green500 metric of §4 ("we also measured the system's power consumption
//! while executing HPL, giving an energy efficiency of 120 MFLOPS/W").

use serde::{Deserialize, Serialize};
use simmpi::MpiRun;
use soc_power::{mflops_per_watt, EfficiencyReport};

use crate::machine::Machine;

/// Power/energy summary of one cluster job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobEnergy {
    /// Number of nodes used.
    pub nodes: u32,
    /// Job wall-clock, seconds.
    pub elapsed_s: f64,
    /// Average total system power (nodes + switches), watts.
    pub avg_power_w: f64,
    /// Energy to solution, Joules.
    pub energy_j: f64,
}

/// Estimate the power and energy of a job run on `machine` using `nodes`
/// nodes: each node draws its idle power for the whole job plus the active
/// core/DRAM/NIC increment for the fraction of time its rank was busy.
pub fn job_energy<R>(machine: &Machine, run: &MpiRun<R>, nodes: u32, freq_ghz: f64) -> JobEnergy {
    let elapsed = run.elapsed.as_secs_f64().max(1e-12);
    let pm = &machine.node_power;
    let cores = machine.platform.soc.cores;
    // Average per-node busy fraction (compute and protocol CPU time).
    let mut node_energy = 0.0;
    for r in 0..run.compute_busy.len() {
        let busy = run.compute_busy[r].as_secs_f64() + run.comm_busy[r].as_secs_f64();
        let busy_frac = (busy / elapsed).min(1.0);
        let p_active = pm.platform_power_w(freq_ghz, cores, 1.0, true);
        let p_idle = pm.idle_power_w();
        node_energy += elapsed * (p_idle + busy_frac * (p_active - p_idle));
    }
    // Ranks might be fewer than nodes (never more nodes than ranks here);
    // idle nodes outside the job are not charged (Green500 measures the
    // partition in use). Switch power is charged in proportion to the nodes
    // used.
    let switch_share = machine.switches as f64
        * machine.switch_power_w
        * (nodes as f64 / machine.nodes() as f64).min(1.0);
    let total_energy = node_energy + switch_share * elapsed;
    JobEnergy {
        nodes,
        elapsed_s: elapsed,
        avg_power_w: total_energy / elapsed,
        energy_j: total_energy,
    }
}

/// Green500 report for a job that sustained `gflops`.
pub fn green500<R>(
    machine: &Machine,
    run: &MpiRun<R>,
    nodes: u32,
    freq_ghz: f64,
    gflops: f64,
) -> EfficiencyReport {
    let e = job_energy(machine, run, nodes, freq_ghz);
    mflops_per_watt(gflops, e.avg_power_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::{run_mpi, Msg};

    #[test]
    fn busy_jobs_cost_more_than_idle_jobs() {
        let m = Machine::tibidabo();
        let busy = run_mpi(m.job(4), |mut r| async move { r.compute_secs(1.0).await }).unwrap();
        let idle = run_mpi(m.job(4), |mut r| async move {
            if r.rank() == 0 {
                r.compute_secs(1.0).await;
                for d in 1..r.size() {
                    r.send(d, 0, Msg::empty()).await;
                }
            } else {
                r.recv(0, 0).await;
            }
        })
        .unwrap();
        let e_busy = job_energy(&m, &busy, 4, 1.0);
        let e_idle = job_energy(&m, &idle, 4, 1.0);
        assert!(e_busy.avg_power_w > e_idle.avg_power_w);
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = Machine::tibidabo();
        let run = run_mpi(m.job(8), |mut r| async move { r.compute_secs(0.5).await }).unwrap();
        let e = job_energy(&m, &run, 8, 1.0);
        assert!((e.energy_j - e.avg_power_w * e.elapsed_s).abs() < 1e-6);
        assert_eq!(e.nodes, 8);
    }

    #[test]
    fn per_node_power_is_in_the_tibidabo_range() {
        // ~808 W for 96 HPL nodes => ~8.4 W/node including switch share.
        let m = Machine::tibidabo();
        let run = run_mpi(m.job(96), |mut r| async move { r.compute_secs(2.0).await }).unwrap();
        let e = job_energy(&m, &run, 96, 1.0);
        let per_node = e.avg_power_w / 96.0;
        assert!((6.0..11.0).contains(&per_node), "{per_node} W/node");
    }

    #[test]
    fn green500_metric_flows_through() {
        let m = Machine::tibidabo();
        let run = run_mpi(m.job(2), |mut r| async move { r.compute_secs(1.0).await }).unwrap();
        let rep = green500(&m, &run, 2, 1.0, 2.0);
        assert!(rep.mflops_per_watt > 0.0);
        assert_eq!(rep.gflops, 2.0);
    }
}
