//! Golden-figure regression tests: every JSON artefact the `repro` binary
//! emits at `--golden` scale is regenerated in-process and compared against
//! the checked-in goldens under `tests/goldens/`.
//!
//! Comparison rules: structure, key order, strings, booleans, and integers
//! (counts, node lists, ids) must match exactly; floating-point leaves are
//! compared with a 1e-9 relative tolerance so a change in summation order or
//! an intentionally value-preserving refactor does not trip the gate, while
//! any real model change does.
//!
//! To refresh after an intentional model change:
//!
//! ```text
//! cargo run --release -p bench --bin repro -- --golden --json tests/goldens
//! rm tests/goldens/_sweep_stats.json   # execution stats are not artefacts
//! ```
//!
//! or `REGOLD=1 cargo test --test golden_figures`, which rewrites the files
//! from this very run.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use serde_json::Value;
use socready::harness::{run_plan, ArtefactOut, RunPlan, RunScales, SweepConfig};

/// Relative tolerance for float leaves.
const REL_TOL: f64 = 1e-9;

fn goldens_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

/// One golden-scale run of every artefact, shared by all test cases in this
/// binary. Uses several workers: the determinism suite separately proves
/// worker count cannot change bytes.
fn artefacts() -> &'static [ArtefactOut] {
    static RUN: OnceLock<Vec<ArtefactOut>> = OnceLock::new();
    RUN.get_or_init(|| {
        let plan = RunPlan::from_items(&["all".to_string()], &RunScales::golden());
        run_plan(plan, &SweepConfig::with_jobs(4)).0
    })
}

fn regen_requested() -> bool {
    std::env::var_os("REGOLD").is_some_and(|v| v == "1")
}

/// Recursive comparison: exact everywhere except float leaves.
fn assert_close(path: &str, got: &Value, want: &Value) {
    match (got, want) {
        (Value::Object(g), Value::Object(w)) => {
            let gk: Vec<&str> = g.iter().map(|(k, _)| k.as_str()).collect();
            let wk: Vec<&str> = w.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(gk, wk, "{path}: object keys changed");
            for ((k, gv), (_, wv)) in g.iter().zip(w) {
                assert_close(&format!("{path}.{k}"), gv, wv);
            }
        }
        (Value::Array(g), Value::Array(w)) => {
            assert_eq!(g.len(), w.len(), "{path}: array length changed");
            for (i, (gv, wv)) in g.iter().zip(w).enumerate() {
                assert_close(&format!("{path}[{i}]"), gv, wv);
            }
        }
        (Value::Float(g), Value::Float(w)) => {
            let scale = g.abs().max(w.abs()).max(1.0);
            assert!(
                (g - w).abs() <= REL_TOL * scale,
                "{path}: float {g} differs from golden {w} beyond {REL_TOL:e} relative"
            );
        }
        // Integers (counts, ids, node lists, byte sizes) are exact — a
        // UInt/Int kind flip for the same value is also a failure, because
        // the serializer derives the kind from the Rust type.
        _ => assert_eq!(got, want, "{path}: value changed"),
    }
}

fn check_artefact(stem: &str) {
    let art = artefacts()
        .iter()
        .find(|a| a.json.as_ref().is_some_and(|(s, _)| *s == stem))
        .unwrap_or_else(|| panic!("no artefact produced JSON stem {stem}"));
    let (_, content) = art.json.as_ref().unwrap();
    let path = goldens_dir().join(format!("{stem}.json"));
    if regen_requested() {
        std::fs::write(&path, content).expect("rewrite golden");
        return;
    }
    let golden_text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    let got = serde_json::from_str(content).expect("generated artefact parses");
    let want = serde_json::from_str(&golden_text).expect("golden parses");
    assert_close(stem, &got, &want);
}

macro_rules! golden_tests {
    ($($name:ident => $stem:literal),+ $(,)?) => {
        $(#[test]
        fn $name() {
            check_artefact($stem);
        })+
    };
}

golden_tests! {
    fig1_matches_golden => "fig1",
    fig2a_matches_golden => "fig2a",
    fig2b_matches_golden => "fig2b",
    fig3_matches_golden => "fig3",
    fig4_matches_golden => "fig4",
    fig5_matches_golden => "fig5",
    fig6_matches_golden => "fig6",
    fig7_matches_golden => "fig7",
    hpl_headline_matches_golden => "hpl_headline",
    resilience_matches_golden => "resilience",
    ablate_net_matches_golden => "ablate_net",
    datacenter_matches_golden => "datacenter",
}

#[test]
fn every_committed_golden_is_still_generated() {
    // A renamed or dropped artefact must fail loudly, not rot silently.
    let produced: Vec<&str> =
        artefacts().iter().filter_map(|a| a.json.as_ref().map(|(s, _)| *s)).collect();
    for entry in std::fs::read_dir(goldens_dir()).expect("goldens dir") {
        let name = entry.unwrap().file_name().into_string().unwrap();
        let Some(stem) = name.strip_suffix(".json") else { continue };
        if stem.starts_with('_') {
            continue; // execution stats, never a golden
        }
        assert!(
            produced.contains(&stem),
            "tests/goldens/{name} has no generating artefact (produced: {produced:?})"
        );
    }
}

#[test]
fn tolerance_walker_rejects_structural_and_gross_numeric_drift() {
    let base = serde_json::from_str(r#"{"n": 4, "t": [1.0, 2.5]}"#).unwrap();
    // Identical and within-tolerance documents pass.
    assert_close("self", &base, &base);
    let nudged = serde_json::from_str(r#"{"n": 4, "t": [1.0000000000001, 2.5]}"#).unwrap();
    assert_close("nudge", &nudged, &base);
    // Integer drift, float drift beyond 1e-9, and shape changes all panic.
    for bad in [
        r#"{"n": 5, "t": [1.0, 2.5]}"#,
        r#"{"n": 4, "t": [1.001, 2.5]}"#,
        r#"{"n": 4, "t": [1.0]}"#,
        r#"{"m": 4, "t": [1.0, 2.5]}"#,
    ] {
        let doc: Value = serde_json::from_str(bad).unwrap();
        let r = std::panic::catch_unwind(|| assert_close("bad", &doc, &base));
        assert!(r.is_err(), "{bad} should have failed against the base document");
    }
}
