//! Cross-crate integration tests: the paper's claims, reproduced end-to-end
//! through the public API at test-friendly scale.

use socready::apps::hpl::{run_hpl, HplConfig};
use socready::apps::{fig6, AppId};
use socready::kernels::fig3_profiles;
use socready::mpi::{pingpong, JobSpec};
use socready::net::ProtocolModel;
use socready::power::{suite_energy, PowerModel};
use socready::prelude::*;

#[test]
fn fig3_headline_single_core_story() {
    // "From the situation when Tegra 2 was 6.5 times slower we have arrived
    // to the position where Exynos 5 is just 3 times slower" (§3.1.1).
    let suite = fig3_profiles();
    let t2 = Platform::tegra2().soc;
    let e5 = Platform::exynos5250().soc;
    let i7 = Platform::core_i7_2760qm().soc;
    let gap_t2 = socready::arch::suite_speedup(&i7, 2.4, 1, &t2, 1.0, 1, &suite);
    let gap_e5 = socready::arch::suite_speedup(&i7, 2.4, 1, &e5, 1.7, 1, &suite);
    assert!((5.7..7.3).contains(&gap_t2), "Tegra2 gap {gap_t2}");
    assert!((2.6..3.4).contains(&gap_e5), "Exynos gap {gap_e5}");
}

#[test]
fn arm_platforms_win_on_energy_to_solution() {
    // §3.1.1: every ARM platform consumes less energy per iteration than the
    // Intel platform at the 1 GHz comparison point.
    let suite = fig3_profiles();
    let i7 = suite_energy(
        &Platform::core_i7_2760qm().soc,
        &PowerModel::core_i7_laptop(),
        1.0,
        1,
        &suite,
    )
    .1;
    for (p, pm) in [
        (Platform::tegra2(), PowerModel::tegra2_devkit()),
        (Platform::tegra3(), PowerModel::tegra3_devkit()),
        (Platform::exynos5250(), PowerModel::exynos5250_devkit()),
    ] {
        let e = suite_energy(&p.soc, &pm, 1.0, 1, &suite).1;
        assert!(e < i7, "{}: {e} J !< i7 {i7} J", p.id);
    }
}

#[test]
fn hpl_small_execute_is_correct_on_the_tibidabo_network() {
    // Real LU with pivoting over the tree topology (not just the test star).
    let m = Machine::tibidabo();
    let res = run_hpl(m.job(6), HplConfig::small(72, 8));
    assert!(res.residual.unwrap() < 16.0, "residual {}", res.residual.unwrap());
}

#[test]
fn hpl_weak_scaling_efficiency_band_at_moderate_scale() {
    // The §4 weak-scaling story at 16 nodes: efficiency must already be on
    // the way down from the single-node dgemm bound (~70%) toward the
    // 96-node 51%.
    let m = Machine::tibidabo();
    let cfg = HplConfig::tibidabo_weak(16);
    let run = run_mpi(m.job(16), move |mut r| async move {
        let t0 = r.now();
        socready::apps::hpl::hpl_rank(&mut r, &cfg).await;
        (r.now() - t0).as_secs_f64()
    })
    .unwrap();
    let secs = run.results.iter().cloned().fold(0.0, f64::max);
    let eff = cfg.flops() / secs / 1e9 / m.peak_gflops(16);
    assert!((0.50..0.72).contains(&eff), "16-node weak efficiency {eff}");
}

#[test]
fn green500_at_16_nodes_is_in_the_tibidabo_class() {
    let m = Machine::tibidabo();
    let cfg = HplConfig::tibidabo_weak(16);
    let run = run_mpi(m.job(16), move |mut r| async move {
        let t0 = r.now();
        socready::apps::hpl::hpl_rank(&mut r, &cfg).await;
        (r.now() - t0).as_secs_f64()
    })
    .unwrap();
    let secs = run.results.iter().cloned().fold(0.0, f64::max);
    let gflops = cfg.flops() / secs / 1e9;
    let g = green500(&m, &run, 16, 1.0, gflops);
    // Paper: 120 MFLOPS/W at 96 nodes; smaller partitions land close by.
    assert!((100.0..180.0).contains(&g.mflops_per_watt), "{} MFLOPS/W", g.mflops_per_watt);
}

#[test]
fn openmx_beats_tcp_on_latency_everywhere_and_bandwidth_where_cpu_bound() {
    // Fig 7: Open-MX always cuts latency. On Tegra 2 (PCIe NIC) it also
    // nearly doubles bandwidth because TCP is CPU-copy-bound there; on the
    // Arndale both protocols ride the same USB bottleneck (paper: 63 vs
    // 69 MB/s — near-identical), so only parity is required.
    for plat in [Platform::tegra2(), Platform::exynos5250()] {
        let tcp = JobSpec::new(plat.clone(), 2).with_freq(1.0).with_proto(ProtocolModel::tcp_ip());
        let omx = JobSpec::new(plat.clone(), 2).with_freq(1.0).with_proto(ProtocolModel::open_mx());
        let lat_tcp = pingpong(tcp.clone(), &[4], 2)[0].latency_us;
        let lat_omx = pingpong(omx.clone(), &[4], 2)[0].latency_us;
        let bw_tcp = pingpong(tcp, &[8 << 20], 1)[0].bandwidth_mbs;
        let bw_omx = pingpong(omx, &[8 << 20], 1)[0].bandwidth_mbs;
        assert!(lat_omx < lat_tcp, "{}: {lat_omx} !< {lat_tcp}", plat.id);
        if plat.id == "tegra2" {
            assert!(bw_omx > 1.5 * bw_tcp, "{}: {bw_omx} !>> {bw_tcp}", plat.id);
        } else {
            assert!(bw_omx > 0.97 * bw_tcp, "{}: {bw_omx} vs {bw_tcp}", plat.id);
        }
    }
}

#[test]
fn fig6_shape_holds_at_reduced_scale() {
    // SPECFEM3D best, PEPC worst, HYDRO in between — the Fig 6 ordering.
    let m = Machine::tibidabo();
    let series = fig6(&m, &[24, 48]);
    let eff = |id: AppId| {
        let s = series
            .iter()
            .find(|s| s.app == socready::apps::table3().iter().find(|a| a.id == id).unwrap().name)
            .unwrap();
        socready::apps::final_efficiency(s)
    };
    let sem = eff(AppId::Specfem3d);
    let pepc = eff(AppId::Pepc);
    let hydro = eff(AppId::Hydro);
    assert!(sem > hydro, "SEM {sem} !> HYDRO {hydro}");
    assert!(hydro > pepc, "HYDRO {hydro} !> PEPC {pepc}");
    assert!(sem > 0.85, "SPECFEM3D should scale nearly ideally: {sem}");
}

#[test]
fn cluster_simulations_are_bit_deterministic() {
    let go = || {
        let m = Machine::tibidabo();
        let run = run_mpi(m.job(12), |mut r| async move {
            let v = r.allreduce(ReduceOp::Sum, vec![r.rank() as f64]).await;
            r.barrier().await;
            (r.now().as_nanos(), v[0])
        })
        .unwrap();
        (run.elapsed.as_nanos(), run.results)
    };
    assert_eq!(go(), go());
}

#[test]
fn table4_balance_story() {
    // §4.1: the mobile SoCs with 1GbE sit near a dual-socket Sandy Bridge —
    // the network is NOT the weak point relative to their compute.
    use socready::cluster::{bytes_per_flop, NetClass};
    let t3 = bytes_per_flop(&Platform::tegra3(), NetClass::GbE1);
    let e5 = bytes_per_flop(&Platform::exynos5250(), NetClass::GbE1);
    let i7_ib = bytes_per_flop(&Platform::core_i7_2760qm(), NetClass::Ib40);
    assert!(t3 > 0.015 && t3 < 0.03);
    assert!(e5 > 0.015 && e5 < 0.03);
    assert!(i7_ib < 0.1, "even 40Gb IB leaves the i7 leaner: {i7_ib}");
}
