//! Property-based integration tests: invariants that must hold across the
//! whole stack for arbitrary inputs.

use proptest::prelude::*;
use socready::kernels::msort::{self, MsortConfig};
use socready::mpi::{run_mpi, JobSpec, Msg, ReduceOp};
use socready::net::{Network, Partition, TopologySpec};
use socready::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The roofline never reports negative or non-finite time, for any work
    /// shape on any platform/frequency/thread combination.
    #[test]
    fn kernel_time_is_finite_positive(
        flops in 1.0e3..1.0e12_f64,
        bytes in 0.0..1.0e11_f64,
        pat_idx in 0usize..5,
        plat_idx in 0usize..4,
        threads in 1u32..16,
    ) {
        let pattern = AccessPattern::ALL[pat_idx];
        let p = &Platform::table1()[plat_idx];
        let w = WorkProfile::new("prop", flops, bytes, pattern);
        for &f in &p.soc.dvfs_ghz {
            let t = kernel_time(&p.soc, f, threads, &w);
            prop_assert!(t.total_s.is_finite() && t.total_s > 0.0);
            prop_assert!(t.total_s + 1e-15 >= t.compute_s.max(t.memory_s));
        }
    }

    /// More work never takes less modelled time (monotonicity).
    #[test]
    fn kernel_time_monotone_in_work(
        flops in 1.0e6..1.0e10_f64,
        bytes in 1.0e3..1.0e9_f64,
        scale in 1.01..10.0_f64,
    ) {
        let soc = Platform::exynos5250().soc;
        let w1 = WorkProfile::new("w", flops, bytes, AccessPattern::Streaming);
        let w2 = w1.scaled(scale);
        let t1 = kernel_time(&soc, 1.0, 2, &w1).total_s;
        let t2 = kernel_time(&soc, 1.0, 2, &w2).total_s;
        prop_assert!(t2 > t1);
    }

    /// Network transfers arrive after they depart and later departures from
    /// the same flow never overtake earlier ones.
    #[test]
    fn network_transfers_are_causal_and_fifo(
        sizes in proptest::collection::vec(1u64..4_000_000, 1..20),
        src in 0u32..192,
        dst in 0u32..192,
    ) {
        prop_assume!(src != dst);
        let mut net = Network::gbe(TopologySpec::tibidabo());
        let mut depart = socready::des::SimTime::ZERO;
        let mut last_arrival = socready::des::SimTime::ZERO;
        for s in sizes {
            let arr = net.transmit(depart, src, dst, s);
            prop_assert!(arr > depart);
            prop_assert!(arr >= last_arrival, "FIFO violated");
            last_arrival = arr;
            depart += socready::des::SimTime::from_micros(5);
        }
    }

    /// The sharded runner's lookahead is sound: for any topology and any
    /// contiguous partition, `min_cross_partition_latency` never exceeds
    /// the head latency of ANY cross-shard path. (The conservative window
    /// protocol rests on this: a message emitted inside a window cannot
    /// take effect on another shard before `window_end = t_min +
    /// lookahead`, so barrier-applied wakes never travel into a shard's
    /// past.)
    #[test]
    fn shard_lookahead_lower_bounds_every_cross_shard_latency(
        topo_idx in 0usize..4,
        used in 2u32..64,
        shards in 2u32..6,
    ) {
        let spec = match topo_idx {
            0 => TopologySpec::Star { nodes: 64 },
            1 => TopologySpec::Tree { edges: 4, nodes_per_edge: 16, uplinks_per_edge: 2 },
            2 => TopologySpec::Tree { edges: 2, nodes_per_edge: 32, uplinks_per_edge: 4 },
            _ => TopologySpec::tibidabo(),
        };
        prop_assume!(used <= spec.nodes() && shards <= used);
        let p = Partition::contiguous(used, shards).expect("2 <= shards <= used");
        let net = Network::gbe(spec);
        let lookahead = net.min_cross_partition_latency(&p);
        prop_assert!(lookahead > socready::des::SimTime::ZERO);
        for src in 0..used {
            for dst in 0..used {
                if src != dst && p.shard_of(src) != p.shard_of(dst) {
                    let lat = net.path_latency(src, dst);
                    prop_assert!(
                        lat >= lookahead,
                        "path {src}->{dst} has latency {lat:?} below the lookahead {lookahead:?}"
                    );
                }
            }
        }
    }

    /// Window-checkpoint rollback is invisible in the bytes: for any
    /// topology, rank count, shard count and condemnation window, a sharded
    /// run whose schedule is condemned mid-flight (forced guard trip at an
    /// arbitrary barrier) recovers to exactly the serial reference —
    /// results, event count and virtual elapsed time — and every window
    /// checkpoint the condemned attempt recorded re-certifies during the
    /// recovery replay. Ineligible or never-condemned draws degenerate to
    /// the plain shard bit-identity property, which must also hold.
    #[test]
    fn condemned_sharded_runs_recover_byte_identically(
        topo_idx in 0usize..4,
        half in 2u32..9,
        rounds in 2u32..7,
        shards in 2u32..5,
        condemn_at in 1u64..6,
    ) {
        let topo = match topo_idx {
            0 => TopologySpec::Star { nodes: 32 },
            1 => TopologySpec::Tree { edges: 4, nodes_per_edge: 8, uplinks_per_edge: 2 },
            2 => TopologySpec::Tree { edges: 2, nodes_per_edge: 16, uplinks_per_edge: 4 },
            _ => TopologySpec::tibidabo(),
        };
        let ranks = 2 * half;
        prop_assume!(ranks <= topo.nodes() && shards <= ranks);
        let spec = |shards: Option<u32>, condemn: Option<u64>| {
            JobSpec::new(Platform::tegra2(), ranks)
                .with_topology(topo)
                .with_shards(shards)
                .with_condemn_at_window(condemn)
        };
        let body = move |mut r: Rank| async move {
            let me = r.rank();
            let half = r.size() / 2;
            let mirror = (me + half) % r.size();
            let mut acc = me as u64;
            for round in 0..rounds {
                r.compute_secs(1e-6).await;
                let payload = Msg::from_u64s(&[acc, round as u64]);
                if me < half {
                    r.send(mirror, round, payload).await;
                    acc = acc.wrapping_add(r.recv(mirror, round).await.to_u64s()[0]);
                } else {
                    acc = acc.wrapping_add(r.recv(mirror, round).await.to_u64s()[0]);
                    r.send(mirror, round, payload).await;
                }
            }
            acc
        };
        let serial = run_mpi(spec(None, None), body).unwrap();
        let condemned = run_mpi(spec(Some(shards), Some(condemn_at)), body).unwrap();
        prop_assert_eq!(&condemned.results, &serial.results);
        prop_assert_eq!(condemned.events, serial.events);
        prop_assert_eq!(condemned.elapsed, serial.elapsed);
        if let Some(rec) = &condemned.recovery {
            // The exactness guard may condemn the schedule for its own
            // reasons before the forced barrier; only a Forced trip is
            // pinned to the requested window.
            if rec.reason == socready::mpi::CondemnReason::Forced {
                prop_assert_eq!(rec.condemned_window, condemn_at);
            }
            // The recovery replay must re-certify every recorded checkpoint.
            prop_assert_eq!(rec.windows_verified, rec.windows_recorded);
        }
    }

    /// allreduce(SUM) equals the arithmetic sum for any rank count and any
    /// contribution values, on every rank.
    #[test]
    fn allreduce_sum_is_exact(
        ranks in 2u32..12,
        seed in 0u64..1000,
    ) {
        let vals: Vec<f64> = (0..ranks).map(|r| ((seed + r as u64) % 97) as f64).collect();
        let expect: f64 = vals.iter().sum();
        let vals_c = vals.clone();
        let run = run_mpi(JobSpec::new(Platform::tegra2(), ranks), move |mut r| {
            let vals = vals_c.clone();
            async move { r.allreduce(ReduceOp::Sum, vec![vals[r.rank() as usize]]).await[0] }
        }).unwrap();
        for v in run.results {
            prop_assert!((v - expect).abs() < 1e-9);
        }
    }

    /// Message payloads survive any route through the cluster intact.
    #[test]
    fn payload_integrity_over_any_pair(
        src in 0u32..8,
        dst in 0u32..8,
        data in proptest::collection::vec(-1.0e6..1.0e6_f64, 1..200),
    ) {
        prop_assume!(src != dst);
        let data_c = data.clone();
        let run = run_mpi(JobSpec::new(Platform::tegra2(), 8), move |mut r| {
            let data = data_c.clone();
            async move {
                if r.rank() == src {
                    r.send(dst, 5, Msg::from_f64s(&data)).await;
                    Vec::new()
                } else if r.rank() == dst {
                    r.recv(src, 5).await.to_f64s()
                } else {
                    Vec::new()
                }
            }
        }).unwrap();
        prop_assert_eq!(&run.results[dst as usize], &data);
    }

    /// Zero-rate fault plans schedule nothing, for any seed, cluster size
    /// and horizon.
    #[test]
    fn zero_rate_fault_plans_are_empty(
        seed in 0u64..u64::MAX,
        nodes in 0u32..256,
        horizon_s in 0.0..1.0e7_f64,
    ) {
        use socready::des::{FaultPlan, FaultRates};
        let plan = FaultPlan::generate(
            seed,
            nodes,
            socready::des::SimTime::from_secs_f64(horizon_s),
            &FaultRates::none(),
        );
        prop_assert!(plan.is_empty(), "zero rates produced {:?}", plan.events());
    }

    /// Explicit fault plans are canonical: overlapping crash/flip/degrade
    /// schedules on the same node come out in one deterministic order no
    /// matter how the caller listed them, sorted by time with same-instant
    /// crashes applied after other faults on that node.
    #[test]
    fn fault_plans_normalize_overlapping_schedules(
        specs in proptest::collection::vec((0u64..20, 0u32..4, 0u8..3), 0..16),
    ) {
        use socready::des::{FaultEvent, FaultKind, FaultPlan, SimTime};
        let mk = |s: &[(u64, u32, u8)]| {
            FaultPlan::from_events(
                s.iter()
                    .map(|&(ms, node, k)| FaultEvent {
                        at: SimTime::from_millis(ms),
                        kind: match k {
                            0 => FaultKind::NodeCrash { node },
                            1 => FaultKind::BitFlip { node },
                            _ => FaultKind::LinkDegrade {
                                node,
                                loss: 0.5,
                                duration: SimTime::from_millis(10),
                            },
                        },
                    })
                    .collect(),
            )
        };
        let plan = mk(&specs);
        let mut rev = specs.clone();
        rev.reverse();
        prop_assert_eq!(mk(&rev), plan.clone());
        prop_assert!(plan.events().windows(2).all(|w| w[0].at <= w[1].at), "plan not sorted");
        for w in plan.events().windows(2) {
            if w[0].at == w[1].at && w[0].kind.node() == w[1].kind.node() {
                let crash_then_other = matches!(w[0].kind, FaultKind::NodeCrash { .. })
                    && !matches!(w[1].kind, FaultKind::NodeCrash { .. });
                prop_assert!(!crash_then_other, "crash ordered before same-instant fault: {w:?}");
            }
        }
    }

    /// On-disk job checkpoints fail closed under any corruption: whatever
    /// byte gets flipped, wherever the file is truncated, or whatever is
    /// appended, the loader rejects the damaged file outright (no partial
    /// resume) and a fresh run of the same job still produces the original
    /// results.
    #[test]
    fn corrupted_job_checkpoints_fail_closed(
        mode in 0u8..3,
        at in 0.0..1.0f64,
        flip in 1u8..255,
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CASE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "socready_prop_ckpt_{}_{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = || {
            JobSpec::new(Platform::tegra2(), 8)
                .with_shards(Some(2))
                .checkpoint_every(Some(1))
                .with_ckpt_dir(Some(dir.clone()))
        };
        let body = move |mut r: Rank| async move {
            let me = r.rank();
            let mirror = (me + r.size() / 2) % r.size();
            let mut acc = me as u64;
            for round in 0..4u32 {
                r.compute_secs(1e-6).await;
                let payload = Msg::from_u64s(&[acc]);
                if me < r.size() / 2 {
                    r.send(mirror, round, payload).await;
                    acc = acc.wrapping_add(r.recv(mirror, round).await.to_u64s()[0]);
                } else {
                    acc = acc.wrapping_add(r.recv(mirror, round).await.to_u64s()[0]);
                    r.send(mirror, round, payload).await;
                }
            }
            acc
        };
        let first = run_mpi(spec(), body).unwrap();
        let ckpt = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| p.extension().is_some_and(|x| x == "ckpt"))
            .expect("sharded run with checkpoint_every must write a .ckpt file");
        prop_assert!(socready::des::JobCkpt::load(&ckpt).is_some(), "pristine file must load");
        let mut bytes = std::fs::read(&ckpt).unwrap();
        let pos = ((at * bytes.len() as f64) as usize).min(bytes.len() - 1);
        match mode {
            0 => bytes.truncate(pos),
            1 => bytes[pos] ^= flip,
            _ => bytes.extend_from_slice(b"trailing junk"),
        }
        std::fs::write(&ckpt, &bytes).unwrap();
        prop_assert!(
            socready::des::JobCkpt::load(&ckpt).is_none(),
            "damaged checkpoint (mode {mode}, pos {pos}) must be rejected outright"
        );
        let second = run_mpi(spec(), body).unwrap();
        prop_assert_eq!(&second.results, &first.results);
        prop_assert_eq!(second.events, first.events);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Merge sort sorts any input (exercised through the kernels crate's
    /// public API; complements its unit tests with a larger domain).
    #[test]
    fn msort_sorts_anything(mut v in proptest::collection::vec(-1.0e9..1.0e9_f64, 0..500)) {
        let out = msort::run_par(&MsortConfig { n: v.len() }, &v);
        v.sort_by(f64::total_cmp);
        prop_assert_eq!(out, v);
    }
}

/// A random op sequence for the placement-store property: each tuple drives
/// one reserve/commit/cancel/release/fail decision.
fn placement_ops() -> impl Strategy<Value = Vec<(u8, u32, u32)>> {
    proptest::collection::vec((0u8..5, 1u32..17, 0u32..16), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Two-phase placement never double-books: under any interleaving of
    /// reserve, commit, cancel, release and node failure, every node has at
    /// most one owner, committed jobs never share nodes, reservations never
    /// hand out dead or busy nodes, and the free/alive counters always agree
    /// with a recount from scratch.
    #[test]
    fn placement_store_never_double_books(ops in placement_ops()) {
        use socready::sched::{NodeFate, PlacementStore, Reservation};
        use std::collections::HashMap;
        const NODES: u32 = 16;
        let mut store = PlacementStore::new(NODES);
        let mut held: Vec<Reservation> = Vec::new();
        let mut running: HashMap<u64, Vec<u32>> = HashMap::new(); // job -> nodes
        let mut dead: Vec<u32> = Vec::new();
        let mut next_job: u64 = 0;
        for (op, count, node) in ops {
            match op {
                0 => {
                    if let Some(r) = store.reserve(count) {
                        // A fresh hold may not overlap any outstanding hold,
                        // any running job's nodes, or any dead node.
                        for &n in r.nodes() {
                            prop_assert!(!dead.contains(&n), "reserved dead node {n}");
                            prop_assert!(
                                held.iter().all(|h| !h.nodes().contains(&n)),
                                "node {n} reserved twice"
                            );
                            prop_assert!(
                                running.values().all(|ns| !ns.contains(&n)),
                                "node {n} reserved while busy"
                            );
                        }
                        held.push(r);
                    }
                }
                1 => {
                    if let Some(r) = held.pop() {
                        let job = next_job;
                        next_job += 1;
                        let granted = store.commit(r, job);
                        running.insert(job, granted);
                    }
                }
                2 => {
                    if let Some(r) = held.pop() {
                        store.cancel(r);
                    }
                }
                3 => {
                    // Release a pseudo-random running job.
                    if let Some(&job) = running.keys().min_by_key(|j| *j ^ count as u64) {
                        let nodes = running.remove(&job).unwrap();
                        let live = nodes.iter().filter(|n| !dead.contains(n)).count() as u32;
                        prop_assert_eq!(store.release(job), live);
                    }
                }
                _ => {
                    // Crashes only strike between passes (no holds out).
                    if held.is_empty() && !dead.contains(&node) {
                        let fate = store.fail_node(node);
                        match fate {
                            NodeFate::WasRunning(job) => {
                                prop_assert!(running[&job].contains(&node));
                                let nodes = running.remove(&job).unwrap();
                                dead.push(node);
                                let live =
                                    nodes.iter().filter(|n| !dead.contains(n)).count() as u32;
                                prop_assert_eq!(store.release(job), live);
                            }
                            NodeFate::WasIdle => dead.push(node),
                            NodeFate::AlreadyDead => prop_assert!(false, "dead set diverged"),
                        }
                    }
                }
            }
            // Counter/model agreement after every op.
            let busy: u32 = running.values().flatten().filter(|n| !dead.contains(n)).count() as u32;
            let reserved: u32 = held.iter().map(|r| r.nodes().len() as u32).sum();
            prop_assert_eq!(store.alive_nodes(), NODES - dead.len() as u32);
            prop_assert_eq!(store.free_nodes(), store.alive_nodes() - busy - reserved);
            prop_assert_eq!(store.busy_nodes(), busy);
            for (&job, nodes) in &running {
                for &n in nodes {
                    if !dead.contains(&n) {
                        prop_assert!(store.owner(n) == Some(job), "node {n} lost its owner");
                    }
                }
            }
        }
        // Drain so no reservation is dropped mid-hold.
        for r in held {
            store.cancel(r);
        }
    }

    /// EASY backfill never delays the head of the queue: on any fault-free
    /// synthetic stream, every once-blocked head job starts no later than
    /// the shadow-time bound computed when it first became the blocked head,
    /// and occupancy never exceeds the machine (or any tenant's nodes the
    /// whole pool).
    #[test]
    fn backfill_never_delays_the_head(
        jobs in 200u64..800,
        seed in 0u64..1000,
        rate_scale in 0.5..2.0f64,
    ) {
        use socready::sched::{
            DcConfig, DcSim, EasyBackfill, RuntimeModel, SyntheticSpec, Tenant,
        };
        let machine = socready::cluster::Machine::tibidabo();
        let model = RuntimeModel::for_machine(&machine);
        let mut spec = SyntheticSpec::standard_mix(jobs, seed, 1.0, 64);
        spec.arrival_rate_hz =
            rate_scale * spec.rate_for_load(&model, machine.nodes(), 0.9);
        let tenants: Vec<Tenant> = spec
            .tenants
            .iter()
            .map(|t| Tenant { name: t.name.to_string(), share: t.share })
            .collect();
        let cfg = DcConfig { audit: true, ..DcConfig::default() };
        let out = DcSim::new(machine, model, Box::new(EasyBackfill), tenants, cfg)
            .run(&spec.generate(), &socready::des::FaultPlan::none());
        prop_assert!(out.audit.head_bound_violations == 0, "EASY delayed a blocked head");
        prop_assert!(out.audit.max_busy_nodes <= 192, "double-booked the machine");
        for (t, &peak) in out.audit.max_tenant_nodes.iter().enumerate() {
            prop_assert!(peak <= 192, "tenant {t} held {peak} of 192 nodes");
        }
        prop_assert_eq!(out.report.completed + out.report.wall_killed, jobs);
    }

    /// Jobs are never placed on dead nodes: under any targeted crash
    /// schedule the alive pool shrinks by exactly the strikes that land
    /// before the campaign ends, and every job still departs exactly once.
    #[test]
    fn replays_never_place_on_dead_nodes(
        seed in 0u64..500,
        crashes in proptest::collection::vec((0u32..192, 10u64..2000), 1..24),
    ) {
        use socready::des::{FaultEvent, FaultKind, FaultPlan, SimTime};
        use socready::sched::{
            DcConfig, DcSim, EasyBackfill, RuntimeModel, SyntheticSpec, Tenant,
        };
        let machine = socready::cluster::Machine::tibidabo();
        let model = RuntimeModel::for_machine(&machine);
        let mut spec = SyntheticSpec::standard_mix(400, seed, 1.0, 64);
        spec.arrival_rate_hz = spec.rate_for_load(&model, machine.nodes(), 1.2);
        let tenants: Vec<Tenant> = spec
            .tenants
            .iter()
            .map(|t| Tenant { name: t.name.to_string(), share: t.share })
            .collect();
        let distinct: std::collections::HashSet<u32> =
            crashes.iter().map(|&(n, _)| n).collect();
        let faults = FaultPlan::from_events(
            crashes
                .iter()
                .map(|&(node, at_s)| FaultEvent {
                    at: SimTime::from_secs_f64(at_s as f64),
                    kind: FaultKind::NodeCrash { node },
                })
                .collect(),
        );
        let cfg = DcConfig { audit: true, ..DcConfig::default() };
        let out = DcSim::new(machine, model, Box::new(EasyBackfill), tenants, cfg)
            .run(&spec.generate(), &faults);
        // Crashes scheduled past the campaign's end never strike; every one
        // that does kills exactly one distinct node, permanently.
        prop_assert!(out.report.crashes as usize <= distinct.len());
        prop_assert_eq!(out.report.nodes_alive_end, 192 - out.report.crashes as u32);
        let departed = out.report.completed
            + out.report.wall_killed
            + out.report.fault_failed
            + out.report.unplaceable;
        prop_assert!(departed == 400, "a job vanished or departed twice");
        prop_assert!(out.audit.max_busy_nodes <= 192);
    }
}

#[test]
fn energy_monotone_in_time_for_fixed_power() {
    // Longer runs at the same operating point cost more energy.
    let pm = socready::power::PowerModel::tegra2_devkit();
    let mut last = 0.0;
    for secs in [0.5, 1.0, 2.0, 4.0] {
        let e = pm.energy_j(secs, 1.0, 2, 1.0, false);
        assert!(e > last);
        last = e;
    }
}

/// Strategy for max-min allocator inputs: six links with arbitrary positive
/// capacities and up to a dozen flows, each crossing one to three distinct
/// links. Duplicate link ids inside a route are collapsed so "crossing" is
/// a set property, matching how [`socready::net::Network`] builds routes.
fn max_min_inputs() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
    (
        proptest::collection::vec(0.5..100.0_f64, 6..7),
        proptest::collection::vec(proptest::collection::vec(0usize..6, 1..4), 1..12),
    )
        .prop_map(|(caps, mut routes)| {
            for r in &mut routes {
                r.sort_unstable();
                r.dedup();
            }
            (caps, routes)
        })
}

/// Per-link bandwidth handed out by an allocation.
fn link_usage(caps: &[f64], routes: &[Vec<usize>], rates: &[f64]) -> Vec<f64> {
    let mut used = vec![0.0f64; caps.len()];
    for (route, &rate) in routes.iter().zip(rates) {
        for &l in route {
            used[l] += rate;
        }
    }
    used
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No link is ever oversubscribed: the rates crossing each link sum to
    /// at most its capacity (up to float accumulation noise).
    #[test]
    fn max_min_never_exceeds_capacity((caps, routes) in max_min_inputs()) {
        let rates = socready::net::max_min_rates(&caps, &routes);
        prop_assert_eq!(rates.len(), routes.len());
        let used = link_usage(&caps, &routes, &rates);
        for (l, (&u, &c)) in used.iter().zip(&caps).enumerate() {
            prop_assert!(u <= c * (1.0 + 1e-9), "link {l}: used {u} > cap {c}");
        }
    }

    /// Every flow gets a positive rate and is bottlenecked: at least one
    /// link on its route is saturated, so no flow could be given more
    /// bandwidth without oversubscribing something.
    #[test]
    fn max_min_bottlenecks_every_flow((caps, routes) in max_min_inputs()) {
        let rates = socready::net::max_min_rates(&caps, &routes);
        let used = link_usage(&caps, &routes, &rates);
        for (f, (route, &rate)) in routes.iter().zip(&rates).enumerate() {
            prop_assert!(rate > 0.0, "flow {f} starved");
            let bottlenecked =
                route.iter().any(|&l| used[l] >= caps[l] * (1.0 - 1e-9));
            prop_assert!(bottlenecked, "flow {f} ({route:?}) has no saturated link");
        }
    }

    /// The allocation is a property of the flow *set*, not the flow order:
    /// rotating the route list rotates the rates with it, so the total
    /// bandwidth handed out is conserved under reordering.
    #[test]
    fn max_min_total_conserved_under_reorder(
        (caps, routes) in max_min_inputs(),
        rot in 0usize..12,
    ) {
        let rates = socready::net::max_min_rates(&caps, &routes);
        let k = rot % routes.len();
        let rotated: Vec<Vec<usize>> =
            routes.iter().cycle().skip(k).take(routes.len()).cloned().collect();
        let rotated_rates = socready::net::max_min_rates(&caps, &rotated);
        for (f, &r) in rotated_rates.iter().enumerate() {
            let orig = rates[(f + k) % rates.len()];
            prop_assert!(
                (r - orig).abs() <= orig.abs() * 1e-9,
                "flow order changed flow {f}'s rate: {orig} -> {r}"
            );
        }
        let total: f64 = rates.iter().sum();
        let rotated_total: f64 = rotated_rates.iter().sum();
        prop_assert!((total - rotated_total).abs() <= total * 1e-9);
    }

    /// Contention is monotone, in the two forms that are actually theorems.
    /// (Per-flow monotonicity is *false* for multi-link routes: a new flow
    /// can squeeze a shared flow on one link and thereby free capacity for
    /// a third flow elsewhere — indirect relief. Random search finds such
    /// cases in ~9% of draws, so this test pins the strongest true forms.)
    ///
    /// 1. When every route crosses exactly one link (independent capacity
    ///    pools — the classic fair-sharing setting), admitting one more
    ///    flow never raises any existing flow's rate.
    /// 2. For arbitrary routes, the *minimum* rate — the quantity max-min
    ///    fairness maximises — never increases when a flow is added.
    #[test]
    fn max_min_adding_a_flow_never_raises_rates(
        (caps, routes) in max_min_inputs(),
        extra in proptest::collection::vec(0usize..6, 1..4),
    ) {
        let mut extra = extra;
        extra.sort_unstable();
        extra.dedup();

        // Form 1: single-link pools are per-flow monotone.
        let single: Vec<Vec<usize>> = routes.iter().map(|r| vec![r[0]]).collect();
        let before = socready::net::max_min_rates(&caps, &single);
        let mut grown = single.clone();
        grown.push(vec![extra[0]]);
        let after = socready::net::max_min_rates(&caps, &grown);
        for (f, (&b, &a)) in before.iter().zip(&after).enumerate() {
            prop_assert!(
                a <= b * (1.0 + 1e-9),
                "adding a flow raised single-link flow {f}'s rate: {b} -> {a}"
            );
        }

        // Form 2: the minimum rate is monotone for arbitrary routes.
        let before = socready::net::max_min_rates(&caps, &routes);
        let mut grown = routes.clone();
        grown.push(extra);
        let after = socready::net::max_min_rates(&caps, &grown);
        let min_before = before.iter().copied().fold(f64::INFINITY, f64::min);
        let min_after =
            after[..routes.len()].iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(
            min_after <= min_before * (1.0 + 1e-9),
            "adding a flow raised the minimum rate: {min_before} -> {min_after}"
        );
    }
}
