//! Property-based integration tests: invariants that must hold across the
//! whole stack for arbitrary inputs.

use proptest::prelude::*;
use socready::kernels::msort::{self, MsortConfig};
use socready::mpi::{run_mpi, JobSpec, Msg, ReduceOp};
use socready::net::{Network, TopologySpec};
use socready::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The roofline never reports negative or non-finite time, for any work
    /// shape on any platform/frequency/thread combination.
    #[test]
    fn kernel_time_is_finite_positive(
        flops in 1.0e3..1.0e12_f64,
        bytes in 0.0..1.0e11_f64,
        pat_idx in 0usize..5,
        plat_idx in 0usize..4,
        threads in 1u32..16,
    ) {
        let pattern = AccessPattern::ALL[pat_idx];
        let p = &Platform::table1()[plat_idx];
        let w = WorkProfile::new("prop", flops, bytes, pattern);
        for &f in &p.soc.dvfs_ghz {
            let t = kernel_time(&p.soc, f, threads, &w);
            prop_assert!(t.total_s.is_finite() && t.total_s > 0.0);
            prop_assert!(t.total_s + 1e-15 >= t.compute_s.max(t.memory_s));
        }
    }

    /// More work never takes less modelled time (monotonicity).
    #[test]
    fn kernel_time_monotone_in_work(
        flops in 1.0e6..1.0e10_f64,
        bytes in 1.0e3..1.0e9_f64,
        scale in 1.01..10.0_f64,
    ) {
        let soc = Platform::exynos5250().soc;
        let w1 = WorkProfile::new("w", flops, bytes, AccessPattern::Streaming);
        let w2 = w1.scaled(scale);
        let t1 = kernel_time(&soc, 1.0, 2, &w1).total_s;
        let t2 = kernel_time(&soc, 1.0, 2, &w2).total_s;
        prop_assert!(t2 > t1);
    }

    /// Network transfers arrive after they depart and later departures from
    /// the same flow never overtake earlier ones.
    #[test]
    fn network_transfers_are_causal_and_fifo(
        sizes in proptest::collection::vec(1u64..4_000_000, 1..20),
        src in 0u32..192,
        dst in 0u32..192,
    ) {
        prop_assume!(src != dst);
        let mut net = Network::gbe(TopologySpec::tibidabo());
        let mut depart = socready::des::SimTime::ZERO;
        let mut last_arrival = socready::des::SimTime::ZERO;
        for s in sizes {
            let arr = net.transmit(depart, src, dst, s);
            prop_assert!(arr > depart);
            prop_assert!(arr >= last_arrival, "FIFO violated");
            last_arrival = arr;
            depart += socready::des::SimTime::from_micros(5);
        }
    }

    /// allreduce(SUM) equals the arithmetic sum for any rank count and any
    /// contribution values, on every rank.
    #[test]
    fn allreduce_sum_is_exact(
        ranks in 2u32..12,
        seed in 0u64..1000,
    ) {
        let vals: Vec<f64> = (0..ranks).map(|r| ((seed + r as u64) % 97) as f64).collect();
        let expect: f64 = vals.iter().sum();
        let vals_c = vals.clone();
        let run = run_mpi(JobSpec::new(Platform::tegra2(), ranks), move |mut r| {
            let vals = vals_c.clone();
            async move { r.allreduce(ReduceOp::Sum, vec![vals[r.rank() as usize]]).await[0] }
        }).unwrap();
        for v in run.results {
            prop_assert!((v - expect).abs() < 1e-9);
        }
    }

    /// Message payloads survive any route through the cluster intact.
    #[test]
    fn payload_integrity_over_any_pair(
        src in 0u32..8,
        dst in 0u32..8,
        data in proptest::collection::vec(-1.0e6..1.0e6_f64, 1..200),
    ) {
        prop_assume!(src != dst);
        let data_c = data.clone();
        let run = run_mpi(JobSpec::new(Platform::tegra2(), 8), move |mut r| {
            let data = data_c.clone();
            async move {
                if r.rank() == src {
                    r.send(dst, 5, Msg::from_f64s(&data)).await;
                    Vec::new()
                } else if r.rank() == dst {
                    r.recv(src, 5).await.to_f64s()
                } else {
                    Vec::new()
                }
            }
        }).unwrap();
        prop_assert_eq!(&run.results[dst as usize], &data);
    }

    /// Zero-rate fault plans schedule nothing, for any seed, cluster size
    /// and horizon.
    #[test]
    fn zero_rate_fault_plans_are_empty(
        seed in 0u64..u64::MAX,
        nodes in 0u32..256,
        horizon_s in 0.0..1.0e7_f64,
    ) {
        use socready::des::{FaultPlan, FaultRates};
        let plan = FaultPlan::generate(
            seed,
            nodes,
            socready::des::SimTime::from_secs_f64(horizon_s),
            &FaultRates::none(),
        );
        prop_assert!(plan.is_empty(), "zero rates produced {:?}", plan.events());
    }

    /// Explicit fault plans are canonical: overlapping crash/flip/degrade
    /// schedules on the same node come out in one deterministic order no
    /// matter how the caller listed them, sorted by time with same-instant
    /// crashes applied after other faults on that node.
    #[test]
    fn fault_plans_normalize_overlapping_schedules(
        specs in proptest::collection::vec((0u64..20, 0u32..4, 0u8..3), 0..16),
    ) {
        use socready::des::{FaultEvent, FaultKind, FaultPlan, SimTime};
        let mk = |s: &[(u64, u32, u8)]| {
            FaultPlan::from_events(
                s.iter()
                    .map(|&(ms, node, k)| FaultEvent {
                        at: SimTime::from_millis(ms),
                        kind: match k {
                            0 => FaultKind::NodeCrash { node },
                            1 => FaultKind::BitFlip { node },
                            _ => FaultKind::LinkDegrade {
                                node,
                                loss: 0.5,
                                duration: SimTime::from_millis(10),
                            },
                        },
                    })
                    .collect(),
            )
        };
        let plan = mk(&specs);
        let mut rev = specs.clone();
        rev.reverse();
        prop_assert_eq!(mk(&rev), plan.clone());
        prop_assert!(plan.events().windows(2).all(|w| w[0].at <= w[1].at), "plan not sorted");
        for w in plan.events().windows(2) {
            if w[0].at == w[1].at && w[0].kind.node() == w[1].kind.node() {
                let crash_then_other = matches!(w[0].kind, FaultKind::NodeCrash { .. })
                    && !matches!(w[1].kind, FaultKind::NodeCrash { .. });
                prop_assert!(!crash_then_other, "crash ordered before same-instant fault: {w:?}");
            }
        }
    }

    /// Merge sort sorts any input (exercised through the kernels crate's
    /// public API; complements its unit tests with a larger domain).
    #[test]
    fn msort_sorts_anything(mut v in proptest::collection::vec(-1.0e9..1.0e9_f64, 0..500)) {
        let out = msort::run_par(&MsortConfig { n: v.len() }, &v);
        v.sort_by(f64::total_cmp);
        prop_assert_eq!(out, v);
    }
}

#[test]
fn energy_monotone_in_time_for_fixed_power() {
    // Longer runs at the same operating point cost more energy.
    let pm = socready::power::PowerModel::tegra2_devkit();
    let mut last = 0.0;
    for secs in [0.5, 1.0, 2.0, 4.0] {
        let e = pm.energy_j(secs, 1.0, 2, 1.0, false);
        assert!(e > last);
        last = e;
    }
}
