//! End-to-end measurement-procedure test: reproduce the paper's §3.1
//! methodology literally — run the suite for many iterations, sample wall
//! power with the simulated Yokogawa WT230 over the parallel region only,
//! and check the instrument agrees with the analytic energy accounting.

use socready::kernels::fig3_profiles;
use socready::power::{kernel_energy, suite_energy, PowerMeter, PowerModel, PowerPhase};
use socready::prelude::*;

#[test]
fn wt230_measurement_matches_analytic_energy() {
    let suite = fig3_profiles();
    for (p, pm) in [
        (Platform::tegra2(), PowerModel::tegra2_devkit()),
        (Platform::exynos5250(), PowerModel::exynos5250_devkit()),
    ] {
        let f = p.soc.fmax_ghz;
        // Build the power trace of ~10 iterations of the suite, the way the
        // paper sets iteration counts "so that the benchmark runs for long
        // enough to get an accurate energy consumption figure".
        let mut trace = Vec::new();
        for _ in 0..10 {
            for w in &suite {
                let e = kernel_energy(&p.soc, &pm, f, 1, w);
                trace.push(PowerPhase { seconds: e.seconds, watts: e.watts });
            }
        }
        let meter = PowerMeter::wt230();
        let measured = meter.measure(&trace);
        let (t, analytic) = suite_energy(&p.soc, &pm, f, 1, &suite);
        let analytic_total = 10.0 * analytic;
        let rel = (measured.energy_j - analytic_total).abs() / analytic_total;
        assert!(
            rel < 0.01,
            "{}: WT230 {:.2} J vs analytic {:.2} J ({:.2}%)",
            p.id,
            measured.energy_j,
            analytic_total,
            100.0 * rel
        );
        // Sampling resolution sanity: 10 iterations must span many samples.
        assert!(measured.samples as f64 > 10.0 * t * 5.0, "too few samples");
    }
}

#[test]
fn meter_derived_energy_per_iteration_hits_the_paper_number() {
    // The full §3.1 measurement chain for the headline value: Tegra 2 at
    // 1 GHz, one iteration = 23.93 J measured through the instrument model.
    let suite = fig3_profiles();
    let p = Platform::tegra2();
    let pm = PowerModel::tegra2_devkit();
    let trace: Vec<PowerPhase> = (0..20)
        .flat_map(|_| {
            suite.iter().map(|w| {
                let e = kernel_energy(&p.soc, &pm, 1.0, 1, w);
                PowerPhase { seconds: e.seconds, watts: e.watts }
            })
        })
        .collect();
    let m = PowerMeter::wt230().measure(&trace);
    let per_iteration = m.energy_j / 20.0;
    assert!(
        (per_iteration - 23.93).abs() / 23.93 < 0.02,
        "measured {per_iteration:.2} J/iter vs paper 23.93 J"
    );
}
