//! The tentpole invariant, proved end-to-end: a full golden-scale run of
//! every artefact on 1 worker and on 8 workers produces byte-identical
//! rendered text and byte-identical JSON. Plus the timing-cache property
//! that makes the parallel sweep cheap: figure cells share model
//! evaluations, so a two-figure run must hit the cache. And the tracing
//! invariant: recording a structured trace never changes a single artefact
//! byte (`ci.sh` additionally proves this at the `repro --trace` binary
//! level on a quick sweep).

use std::sync::Arc;

use des::mc::RunOutcome;
use des::RingRecorder;
use socready::harness::trace::record_line;
use socready::harness::{
    counterexample_json, mc_scenario, run_plan, McOverrides, RunPlan, RunScales, SweepConfig,
};

fn items(keys: &[&str]) -> Vec<String> {
    keys.iter().map(|s| s.to_string()).collect()
}

#[test]
fn jobs_1_and_jobs_8_are_byte_identical_across_all_artefacts() {
    let mk = || RunPlan::from_items(&items(&["all"]), &RunScales::golden());
    let (serial, stats1) = run_plan(mk(), &SweepConfig::with_jobs(1));
    let (parallel, stats8) = run_plan(mk(), &SweepConfig::with_jobs(8));

    assert_eq!(stats1.cells, stats8.cells, "plans enumerated different cell counts");
    assert_eq!(stats8.jobs, 8);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.key, b.key, "artefact order diverged");
        assert_eq!(a.blocks, b.blocks, "{}: rendered text diverged between 1 and 8 workers", a.key);
        match (&a.json, &b.json) {
            (Some((sa, ja)), Some((sb, jb))) => {
                assert_eq!(sa, sb, "{}: JSON stem diverged", a.key);
                assert_eq!(ja, jb, "{}: JSON bytes diverged between 1 and 8 workers", a.key);
            }
            (None, None) => {}
            _ => panic!("{}: JSON presence diverged", a.key),
        }
    }
}

#[test]
fn traced_run_produces_byte_identical_artefacts() {
    // Same golden-scale artefacts, once recording into a ring tracer and
    // once untraced. Fig 7 is chosen because its ping-pong cells spawn real
    // simmpi engines (fig5/table3 are closed-form models that never reach
    // the DES, so they would leave the ring empty); table3 rides along as a
    // no-JSON artefact. The traced run goes first: the process-wide timing
    // cache would otherwise satisfy its cells without spawning a single
    // engine. The recorder observes every engine the process spawns while
    // installed (other tests running in parallel may add noise records —
    // harmless, the assertion is on artefact bytes, not on the trace).
    let mk = || RunPlan::from_items(&items(&["fig7", "table3"]), &RunScales::golden());
    let rec = Arc::new(RingRecorder::with_capacity(1 << 20));
    simmpi::set_default_tracer(Some(rec.clone()));
    let (traced, _) = run_plan(mk(), &SweepConfig::serial());
    simmpi::set_default_tracer(None);

    let (untraced, _) = run_plan(mk(), &SweepConfig::serial());

    assert!(!rec.is_empty(), "the traced run must actually have recorded events");
    assert_eq!(untraced.len(), traced.len());
    for (a, b) in untraced.iter().zip(&traced) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.blocks, b.blocks, "{}: rendered text changed under tracing", a.key);
        assert_eq!(
            a.json.as_ref().map(|(_, j)| j),
            b.json.as_ref().map(|(_, j)| j),
            "{}: JSON bytes changed under tracing",
            a.key
        );
    }
}

#[test]
fn sharded_runs_produce_byte_identical_artefacts() {
    // The sharded-engine invariant at the artefact level: fig7 (ping-pong
    // cells spawning real simmpi engines) and the HPL headline rendered
    // under `--shards 2` and `--shards 4` must be byte-identical — text and
    // JSON — to the serial engine, which the golden tests in turn pin
    // against the checked-in pre-shard goldens. The sharded runs go first
    // so the process-wide timing cache cannot satisfy their cells without
    // spawning engines (the traced-run test's discipline); `ci.sh`
    // re-proves the same identity at the `repro --shards` binary level,
    // where every cache starts cold. Cells whose jobs are ineligible for
    // sharding fall back to the serial engine — that fallback being
    // invisible is part of the contract under test.
    let mk = || RunPlan::from_items(&items(&["fig7", "hpl"]), &RunScales::golden());
    let mut sharded = Vec::new();
    for n in [2u32, 4] {
        simmpi::set_default_shards(Some(n));
        sharded.push((n, run_plan(mk(), &SweepConfig::serial()).0));
    }
    simmpi::set_default_shards(None);
    let (serial, _) = run_plan(mk(), &SweepConfig::serial());

    for (n, arts) in &sharded {
        assert_eq!(serial.len(), arts.len());
        for (a, b) in serial.iter().zip(arts) {
            assert_eq!(a.key, b.key, "artefact order diverged at {n} shards");
            assert_eq!(a.blocks, b.blocks, "{}: rendered text diverged at {n} shards", a.key);
            assert_eq!(
                a.json.as_ref().map(|(_, j)| j),
                b.json.as_ref().map(|(_, j)| j),
                "{}: JSON bytes diverged at {n} shards",
                a.key
            );
        }
    }
}

#[test]
fn mc_counterexample_replays_are_byte_identical() {
    // The model checker's counterexamples must be deterministic artefacts:
    // two independent bounded searches over the broken-retry fixture find
    // the same minimal decision prefix (byte-identical JSON), and replaying
    // that prefix twice produces byte-identical trace lines. Each replay
    // records through its own ctl-carried RingRecorder — NOT the process
    // global tracer, which other tests running in parallel would pollute.
    let sc = mc_scenario("retry-lossy-broken").expect("fixture scenario registered");
    let cfg = sc.config(&McOverrides::default());

    let mut jsons = Vec::new();
    for _ in 0..2 {
        let report = sc.explore(&cfg);
        let ce = report.violation.expect("broken fixture must yield a counterexample");
        jsons.push(counterexample_json(sc.name, &cfg, &ce));
    }
    assert_eq!(jsons[0], jsons[1], "counterexample JSON diverged between searches");

    let report = sc.explore(&cfg);
    let ce = report.violation.expect("broken fixture must yield a counterexample");
    let mut traces = Vec::new();
    for _ in 0..2 {
        let rec = Arc::new(RingRecorder::with_capacity(1 << 20));
        let rep = sc.replay(&cfg, ce.decisions.clone(), Some(rec.clone()));
        assert!(rep.divergence.is_none(), "replay diverged: {:?}", rep.divergence);
        match &rep.outcome {
            RunOutcome::Violation { property, .. } => {
                assert_eq!(property, &ce.property, "replay violated a different property")
            }
            other => panic!("replay must reproduce the violation, got {other:?}"),
        }
        assert_eq!(rec.dropped(), 0, "replay trace must fit the ring");
        let lines: Vec<String> = rec.drain().iter().map(record_line).collect();
        assert!(!lines.is_empty(), "replay must record trace events");
        traces.push(lines.join("\n"));
    }
    assert_eq!(traces[0], traces[1], "replayed counterexample traces diverged byte-for-byte");
}

#[test]
fn two_figure_run_reuses_timing_cache() {
    // Fig 3 and Fig 4 sweep the same platforms over the same DVFS points and
    // kernels (threads differ, but the shared Tegra2@1GHz baseline and the
    // serial Tegra2 series coincide), so the second figure must score hits.
    let plan = RunPlan::from_items(&items(&["fig3", "fig4"]), &RunScales::golden());
    let (_, stats) = run_plan(plan, &SweepConfig::with_jobs(2));
    assert!(
        stats.timing_cache.hits > 0,
        "expected timing-cache hits on a fig3+fig4 run, got {:?}",
        stats.timing_cache
    );
    assert!(stats.timing_cache.hit_rate() > 0.0);
}

#[test]
fn flow_model_ablation_is_byte_identical_across_schedules() {
    // The flow-level network model must be as deterministic as the event
    // model it replaces: the model-equivalence ablation (every golden
    // figure executed under BOTH network models) rendered on 1 worker and
    // on 8 workers is byte-identical, text and JSON. This exercises the
    // whole flow fast path — max-min re-shares, the batched alltoall
    // receiver, and flow start/finish event ordering — under a parallel
    // sweep schedule.
    let mk = || RunPlan::from_items(&items(&["ablate-net"]), &RunScales::golden());
    let (serial, _) = run_plan(mk(), &SweepConfig::with_jobs(1));
    let (parallel, stats8) = run_plan(mk(), &SweepConfig::with_jobs(8));

    assert_eq!(stats8.jobs, 8);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.key, b.key, "artefact order diverged");
        assert_eq!(a.blocks, b.blocks, "{}: ablation text diverged across schedules", a.key);
        assert_eq!(
            a.json.as_ref().map(|(_, j)| j),
            b.json.as_ref().map(|(_, j)| j),
            "{}: ablation JSON diverged across schedules",
            a.key
        );
    }
}
