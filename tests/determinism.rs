//! The tentpole invariant, proved end-to-end: a full golden-scale run of
//! every artefact on 1 worker and on 8 workers produces byte-identical
//! rendered text and byte-identical JSON. Plus the timing-cache property
//! that makes the parallel sweep cheap: figure cells share model
//! evaluations, so a two-figure run must hit the cache.

use socready::harness::{run_plan, RunPlan, RunScales, SweepConfig};

fn items(keys: &[&str]) -> Vec<String> {
    keys.iter().map(|s| s.to_string()).collect()
}

#[test]
fn jobs_1_and_jobs_8_are_byte_identical_across_all_artefacts() {
    let mk = || RunPlan::from_items(&items(&["all"]), &RunScales::golden());
    let (serial, stats1) = run_plan(mk(), &SweepConfig::with_jobs(1));
    let (parallel, stats8) = run_plan(mk(), &SweepConfig::with_jobs(8));

    assert_eq!(stats1.cells, stats8.cells, "plans enumerated different cell counts");
    assert_eq!(stats8.jobs, 8);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.key, b.key, "artefact order diverged");
        assert_eq!(a.blocks, b.blocks, "{}: rendered text diverged between 1 and 8 workers", a.key);
        match (&a.json, &b.json) {
            (Some((sa, ja)), Some((sb, jb))) => {
                assert_eq!(sa, sb, "{}: JSON stem diverged", a.key);
                assert_eq!(ja, jb, "{}: JSON bytes diverged between 1 and 8 workers", a.key);
            }
            (None, None) => {}
            _ => panic!("{}: JSON presence diverged", a.key),
        }
    }
}

#[test]
fn two_figure_run_reuses_timing_cache() {
    // Fig 3 and Fig 4 sweep the same platforms over the same DVFS points and
    // kernels (threads differ, but the shared Tegra2@1GHz baseline and the
    // serial Tegra2 series coincide), so the second figure must score hits.
    let plan = RunPlan::from_items(&items(&["fig3", "fig4"]), &RunScales::golden());
    let (_, stats) = run_plan(plan, &SweepConfig::with_jobs(2));
    assert!(
        stats.timing_cache.hits > 0,
        "expected timing-cache hits on a fig3+fig4 run, got {:?}",
        stats.timing_cache
    );
    assert!(stats.timing_cache.hit_rate() > 0.0);
}
