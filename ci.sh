#!/usr/bin/env bash
# CI gate for the workspace. Run from the repo root:
#
#   ./ci.sh          # full gate: fmt, clippy, build, tests, smoke run
#   ./ci.sh --quick  # skip the release build + smoke run (fast local check)
#
# Everything here runs fully offline: all third-party deps are vendored
# under vendor/, so no registry access is needed (or attempted).

set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

step() { echo; echo "==> $*"; }

step "rustfmt (check only)"
cargo fmt --all --check

step "clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

step "rustdoc (no deps, warnings are errors)"
# Explicit package list: the vendored crates are workspace members but their
# docs are not ours to gate.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p socready -p des -p simmpi -p hpc-apps -p bench -p sched \
  -p kernels -p netsim -p cluster -p soc-arch -p soc-power -p trends

step "doc-tests (runnable API examples)"
cargo test --doc --quiet -p des -p simmpi -p bench -p sched

step "tests (debug, whole workspace)"
cargo test --workspace --quiet

step "golden figures + sweep determinism (in-process)"
cargo test --quiet --test golden_figures --test determinism

if [[ $quick -eq 0 ]]; then
  step "release build"
  cargo build --release --workspace --quiet

  step "smoke: repro --quick --headline resilience"
  out=$(mktemp -d)
  cargo run --release -p bench --bin repro -- --quick --headline resilience --json "$out"
  test -s "$out/resilience.json" || {
    echo "error: resilience smoke run produced no JSON" >&2
    exit 1
  }
  # The artefact must contain a populated sweep, not just an empty shell.
  grep -q '"inflation"' "$out/resilience.json" || {
    echo "error: resilience.json has no sweep cells" >&2
    exit 1
  }
  echo "smoke OK: $(wc -c <"$out/resilience.json") bytes of resilience.json"
  rm -rf "$out"

  step "datacenter-smoke: 1e5-job replay, serial vs parallel byte-identity"
  # The multi-tenant scheduler replays the --quick job stream (1e5 jobs per
  # policy cell, faults active) twice — once on the serial executor and once
  # with worker threads — and the datacenter.json artefacts must match
  # byte-for-byte: the stream, the fault plan, and every policy decision are
  # functions of the seeds alone, never of scheduling on the host.
  dc_s=$(mktemp -d) && dc_p=$(mktemp -d)
  cargo run --release -p bench --bin repro -- \
    --quick --headline datacenter --serial --json "$dc_s" \
    >"$dc_s/stdout.txt" 2>"$dc_s/stderr.txt"
  cargo run --release -p bench --bin repro -- \
    --quick --headline datacenter --jobs "$(nproc)" --json "$dc_p" \
    >"$dc_p/stdout.txt" 2>"$dc_p/stderr.txt"
  test -s "$dc_s/datacenter.json" || {
    echo "error: datacenter smoke run produced no JSON" >&2
    cat "$dc_s/stderr.txt" >&2 || true
    exit 1
  }
  grep -q '"crashes"' "$dc_s/datacenter.json" || {
    echo "error: datacenter.json reports no fault accounting" >&2
    exit 1
  }
  diff "$dc_s/datacenter.json" "$dc_p/datacenter.json" || {
    echo "error: datacenter.json diverged between --serial and --jobs $(nproc)" >&2
    exit 1
  }
  echo "datacenter smoke OK: $(wc -c <"$dc_s/datacenter.json") bytes, serial == parallel"
  rm -rf "$dc_s" "$dc_p"

  step "scale smoke: event-driven process model under time/RSS budget"
  # The 1024-process thread-vs-event ring plus the 4096-rank ping-ring must
  # finish inside a fixed wall-clock budget, stay inside a fixed RSS budget
  # (no thread-per-rank stacks), and show the event-driven model is at least
  # 10x the legacy model in events/sec.
  scale_dir=$(mktemp -d)
  scale_json="$scale_dir/BENCH_scale.json"
  if [[ -x /usr/bin/time ]]; then
    /usr/bin/time -v -o "$scale_dir/time.log" \
      timeout 180 target/release/scale_bench "$scale_json"
    rss_kb=$(awk '/Maximum resident set size/ {print $NF}' "$scale_dir/time.log")
    if [[ -n "$rss_kb" && "$rss_kb" -gt $((4 * 1024 * 1024)) ]]; then
      echo "error: scale smoke used ${rss_kb} kB RSS (budget 4 GiB)" >&2
      exit 1
    fi
    echo "scale smoke RSS: ${rss_kb:-?} kB"
  else
    timeout 180 target/release/scale_bench "$scale_json"
  fi
  grep -q '"peak_ranks": 4096' "$scale_json" || {
    echo "error: BENCH_scale.json missing the 4096-rank datum" >&2
    exit 1
  }
  speedup=$(grep -o '"speedup": [0-9.]*' "$scale_json" | awk '{print $2}')
  awk -v s="$speedup" 'BEGIN { exit !(s >= 10.0) }' || {
    echo "error: event-driven model only ${speedup}x the legacy model (need >= 10x)" >&2
    exit 1
  }
  # The trace layer's enabled-but-uninterested residual (an installed
  # NullTracer) must stay under 2% of the untraced ring.
  overhead=$(grep -o '"trace_overhead_pct": [0-9.]*' "$scale_json" | awk '{print $2}')
  awk -v o="$overhead" 'BEGIN { exit !(o != "" && o < 2.0) }' || {
    echo "error: NullTracer overhead is ${overhead:-missing}% (budget < 2%)" >&2
    exit 1
  }
  # The fair-sharing flow model must keep its wall-clock win on the dense
  # alltoall workload: whole-flow scheduling collapses the event count, so
  # the same virtual job must simulate at least 5x faster than the
  # per-message event model.
  flow_speedup=$(grep -o '"flow_speedup": [0-9.]*' "$scale_json" | awk '{print $2}')
  awk -v s="$flow_speedup" 'BEGIN { exit !(s != "" && s >= 5.0) }' || {
    echo "error: flow model only ${flow_speedup:-missing}x the event model (need >= 5x)" >&2
    exit 1
  }
  # The sharded engine's scaling datum: scale_bench itself asserts the
  # 1/2/4-shard runs are bit-identical (results and event counts); here we
  # gate the wall ratio. Shard workers are OS threads, so the >= 1.5x
  # 2-shard expectation only means something with real cores — a
  # single-CPU box instead gates bounded overhead (the sharded run may
  # not collapse below half the serial engine's speed).
  shard_speedup=$(grep -o '"shard_speedup": [0-9.]*' "$scale_json" | awk '{print $2}')
  host_cpus=$(grep -o '"host_cpus": [0-9]*' "$scale_json" | awk '{print $2}')
  if [[ "${host_cpus:-1}" -ge 2 ]]; then
    awk -v s="$shard_speedup" 'BEGIN { exit !(s != "" && s >= 1.5) }' || {
      echo "error: 2 engine shards only ${shard_speedup:-missing}x serial (need >= 1.5x on ${host_cpus} cpus)" >&2
      exit 1
    }
  else
    awk -v s="$shard_speedup" 'BEGIN { exit !(s != "" && s >= 0.5) }' || {
      echo "error: 2 engine shards at ${shard_speedup:-missing}x serial (need >= 0.5x even on 1 cpu)" >&2
      exit 1
    }
    echo "note: 1 cpu visible; shard gate relaxed to bounded overhead (got ${shard_speedup}x)"
  fi
  # Window-checkpoint rollback must beat the legacy wind-down + full rerun
  # on the same deliberately-condemned job (late-window trip, so the
  # wind-down has real work left to burn), and both recovery paths must be
  # byte-identical to the serial reference — scale_bench asserts identity
  # of the per-rank results; the JSON carries the combined flag.
  condemn_identical=$(grep -o '"identical": [a-z]*' "$scale_json" | awk '{print $2}')
  if [[ "$condemn_identical" != "true" ]]; then
    echo "error: condemned-run recovery not byte-identical to serial (identical=${condemn_identical:-missing})" >&2
    exit 1
  fi
  rollback_wall=$(grep -o '"rollback_wall_secs": [0-9.e-]*' "$scale_json" | awk '{print $2}')
  legacy_wall=$(grep -o '"legacy_wall_secs": [0-9.e-]*' "$scale_json" | awk '{print $2}')
  awk -v r="$rollback_wall" -v l="$legacy_wall" 'BEGIN { exit !(r != "" && l != "" && r < l) }' || {
    echo "error: checkpoint rollback (${rollback_wall:-missing}s) did not beat the legacy full rerun (${legacy_wall:-missing}s)" >&2
    exit 1
  }
  saving=$(grep -o '"rollback_saving": [0-9.e-]*' "$scale_json" | awk '{print $2}')
  echo "scale smoke OK: event-driven is ${speedup}x the legacy model, NullTracer overhead ${overhead}%, flow net model ${flow_speedup}x the event model, 2-shard engine ${shard_speedup}x serial on ${host_cpus:-1} cpu(s), condemned-run rollback ${saving}x cheaper than a full rerun"
  rm -rf "$scale_dir"

  step "net-ablation-smoke: flow model tracks the event model on the goldens"
  # Run the golden figures under both network models (repro --ablate-net)
  # and gate the flow model's worst per-point relative error on fig7 — the
  # paper's Fig 12 ping-pong curves, the figure most sensitive to the
  # network model — under 2%. The full per-figure delta table lands in
  # ablate_net.json (journaled like any other artefact).
  adir=$(mktemp -d)
  target/release/repro --golden --ablate-net --serial --json "$adir" \
    >"$adir/stdout.txt" 2>"$adir/stderr.txt"
  test -s "$adir/ablate_net.json" || {
    echo "error: --ablate-net produced no ablate_net.json" >&2
    cat "$adir/stderr.txt" >&2 || true
    exit 1
  }
  fig7_err=$(grep -o '"max_rel_err_fig7": [0-9.e-]*' "$adir/ablate_net.json" | awk '{print $2}')
  awk -v e="$fig7_err" 'BEGIN { exit !(e != "" && e + 0 < 0.02) }' || {
    echo "error: flow model fig7 max rel error is ${fig7_err:-missing} (budget < 0.02)" >&2
    exit 1
  }
  echo "net ablation OK: flow model fig7 max rel error ${fig7_err} (< 0.02)"
  rm -rf "$adir"

  step "sweep executor: serial vs parallel byte-identity (binary level)"
  # Full --golden artefact run twice: the reference serial schedule and a
  # many-worker schedule. Any divergence in stdout or in any JSON artefact
  # (execution stats excluded — they are the one legitimately nondeterministic
  # output) fails the gate.
  repro=target/release/repro
  jobs=$(nproc)
  sdir=$(mktemp -d) && pdir=$(mktemp -d)
  t0=$SECONDS
  "$repro" --golden --serial --json "$sdir" >"$sdir/stdout.txt" 2>"$sdir/stderr.txt"
  t_serial=$((SECONDS - t0))
  t0=$SECONDS
  "$repro" --golden --jobs "$jobs" --json "$pdir" >"$pdir/stdout.txt" 2>"$pdir/stderr.txt"
  t_parallel=$((SECONDS - t0))
  diff "$sdir/stdout.txt" "$pdir/stdout.txt" || {
    echo "error: stdout diverged between --serial and --jobs $jobs" >&2
    exit 1
  }
  diff -r -x '_journal.jsonl' -x '_sweep_stats.json' -x 'stdout.txt' -x 'stderr.txt' "$sdir" "$pdir" || {
    echo "error: JSON artefacts diverged between --serial and --jobs $jobs" >&2
    exit 1
  }
  echo "byte-identity OK (serial ${t_serial}s vs ${jobs}-worker ${t_parallel}s)"
  grep -o 'sweep: .*' "$pdir/stderr.txt" || true
  # The speedup expectation only means something with real cores; CI boxes
  # with cgroup-limited cpu counts still enforce identity above.
  if [[ "$jobs" -ge 4 && $t_serial -ge 8 && $((t_parallel * 2)) -gt $t_serial ]]; then
    echo "error: ${jobs}-worker run (${t_parallel}s) is not 2x faster than serial (${t_serial}s)" >&2
    exit 1
  fi
  rm -rf "$pdir"

  step "trace: --trace leaves artefacts byte-identical, trace2flame folds it"
  # The same golden serial run with a structured trace recorded must match
  # the untraced reference byte-for-byte, and the emitted JSONL must fold
  # into non-empty collapsed-stack output (docs/TRACE_FORMAT.md).
  tdir=$(mktemp -d)
  "$repro" --golden --serial --json "$tdir" --trace "$tdir/trace.jsonl" \
    >"$tdir/stdout.txt" 2>"$tdir/stderr.txt"
  diff "$sdir/stdout.txt" "$tdir/stdout.txt" || {
    echo "error: stdout changed when tracing was enabled" >&2
    exit 1
  }
  diff -r -x '_journal.jsonl' -x '_sweep_stats.json' -x 'stdout.txt' -x 'stderr.txt' \
    -x 'trace.jsonl' "$sdir" "$tdir" || {
    echo "error: JSON artefacts changed when tracing was enabled" >&2
    exit 1
  }
  head -1 "$tdir/trace.jsonl" | grep -q '"kind":"trace_start"' || {
    echo "error: trace.jsonl is missing the trace_start header" >&2
    exit 1
  }
  target/release/trace2flame "$tdir/trace.jsonl" --folded "$tdir/folded.txt" \
    2>"$tdir/t2f.stderr.txt"
  grep -q '^rank0;' "$tdir/folded.txt" || {
    echo "error: trace2flame produced no rank0 collapsed stacks" >&2
    cat "$tdir/t2f.stderr.txt" >&2 || true
    exit 1
  }
  echo "trace OK: $(wc -l <"$tdir/trace.jsonl") JSONL lines -> $(wc -l <"$tdir/folded.txt") collapsed stacks, artefacts unchanged"
  rm -rf "$tdir"

  step "shards: --shards 4 artefacts byte-identical to the serial engine"
  # The whole golden sweep once more with every eligible simulation sharded
  # across 4 DES engines. Stdout and every JSON artefact must match the
  # serial reference byte-for-byte — the conservative window protocol is
  # bit-exact, and ineligible jobs must fall back invisibly.
  shdir=$(mktemp -d)
  "$repro" --golden --serial --shards 4 --json "$shdir" \
    >"$shdir/stdout.txt" 2>"$shdir/stderr.txt"
  diff "$sdir/stdout.txt" "$shdir/stdout.txt" || {
    echo "error: stdout diverged between --shards 4 and the serial engine" >&2
    exit 1
  }
  diff -r -x '_journal.jsonl' -x '_sweep_stats.json' -x 'stdout.txt' -x 'stderr.txt' \
    "$sdir" "$shdir" || {
    echo "error: JSON artefacts diverged between --shards 4 and the serial engine" >&2
    exit 1
  }
  echo "shard byte-identity OK: --shards 4 matches the serial reference"
  rm -rf "$shdir"

  step "supervisor: SIGKILL mid-sweep, then --resume byte-identity"
  # Start a full golden run, SIGKILL it once the journal shows the first
  # completed artefact, then --resume in the same directory. The resumed
  # directory must be byte-identical to the uninterrupted serial reference.
  # (If the run finishes before the kill lands, --resume skips everything —
  # the identity check still has to hold, so the stage stays race-tolerant.)
  kdir=$(mktemp -d)
  "$repro" --golden --jobs "$jobs" --json "$kdir" \
    >"$kdir/killed_stdout.txt" 2>"$kdir/killed_stderr.txt" &
  kpid=$!
  for _ in $(seq 1 600); do
    grep -q '"kind":"artifact"' "$kdir/_journal.jsonl" 2>/dev/null && break
    kill -0 "$kpid" 2>/dev/null || break
    sleep 0.1
  done
  kill -9 "$kpid" 2>/dev/null || true
  wait "$kpid" 2>/dev/null || true
  # On fast machines the run may finish before the kill lands. Make the
  # interruption deterministic either way: delete one artefact and tear the
  # journal mid-record, exactly the state a crash can leave behind. --resume
  # must tolerate the torn tail, re-derive the missing artefact, and skip
  # the verified rest.
  rm -f "$kdir/fig6.json"
  truncate -s -7 "$kdir/_journal.jsonl"
  "$repro" --golden --jobs "$jobs" --json "$kdir" --resume \
    >"$kdir/stdout.txt" 2>"$kdir/stderr.txt"
  diff -r -x '_journal.jsonl' -x '_sweep_stats.json' -x 'stdout.txt' -x 'stderr.txt' \
    -x 'killed_*.txt' "$sdir" "$kdir" || {
    echo "error: --resume after SIGKILL did not reproduce the reference artefacts" >&2
    exit 1
  }
  grep -o 'resume: .*' "$kdir/stderr.txt" || true
  if grep -q 'resume: fig6 verified' "$kdir/stderr.txt"; then
    echo "error: deleted fig6.json was skipped instead of re-derived" >&2
    exit 1
  fi
  echo "kill+resume OK: resumed directory matches the uninterrupted reference"
  rm -rf "$kdir"

  step "ckpt: SIGKILL a sharded --ckpt-every run mid-job, resume from disk"
  # A sharded golden run persisting verified window checkpoints is
  # SIGKILLed as soon as the first checkpoint file hits the disk, then
  # re-invoked with the same flags plus --resume. The on-disk checkpoints
  # (docs/CKPT_FORMAT.md) let the rerun of each interrupted simulation
  # resume and certify mid-job; the finished directory must be
  # byte-identical to the serial reference. (If the run finishes before
  # the kill lands, resume skips everything — identity still has to hold.)
  ckdir=$(mktemp -d)
  "$repro" --golden --serial --shards 2 --ckpt-every 64 --json "$ckdir" \
    >"$ckdir/killed_stdout.txt" 2>"$ckdir/killed_stderr.txt" &
  ckpid=$!
  for _ in $(seq 1 600); do
    ls "$ckdir"/_ckpt/job_*.ckpt >/dev/null 2>&1 && break
    kill -0 "$ckpid" 2>/dev/null || break
    sleep 0.1
  done
  kill -9 "$ckpid" 2>/dev/null || true
  wait "$ckpid" 2>/dev/null || true
  ls "$ckdir"/_ckpt/job_*.ckpt >/dev/null 2>&1 || {
    echo "error: sharded --ckpt-every run wrote no job checkpoint before dying" >&2
    exit 1
  }
  "$repro" --golden --serial --shards 2 --ckpt-every 64 --json "$ckdir" --resume \
    >"$ckdir/stdout.txt" 2>"$ckdir/stderr.txt"
  diff -r -x '_journal.jsonl' -x '_sweep_stats.json' -x '_ckpt' -x 'stdout.txt' \
    -x 'stderr.txt' -x 'killed_*.txt' "$sdir" "$ckdir" || {
    echo "error: disk-checkpoint resume did not reproduce the reference artefacts" >&2
    exit 1
  }
  echo "ckpt kill+resume OK: $(ls "$ckdir"/_ckpt/job_*.ckpt | wc -l) job checkpoint(s), resumed artefacts match the serial reference"
  rm -rf "$ckdir"

  step "supervisor: injected panic is quarantined, run degrades to exit 3"
  # A cell that always panics must poison only its own artefact: the run
  # exits 3 (degraded, not a crash), fig5.json is never persisted, and every
  # other artefact is byte-identical to the reference.
  qdir=$(mktemp -d)
  set +e
  "$repro" --golden --serial --json "$qdir" --inject-panic fig5 \
    >"$qdir/stdout.txt" 2>"$qdir/stderr.txt"
  rc=$?
  set -e
  if [[ $rc -ne 3 ]]; then
    echo "error: --inject-panic fig5 exited $rc (want 3 = degraded)" >&2
    tail -20 "$qdir/stderr.txt" >&2 || true
    exit 1
  fi
  if [[ -e "$qdir/fig5.json" ]]; then
    echo "error: quarantined artefact fig5.json was persisted" >&2
    exit 1
  fi
  diff -r -x 'fig5.json' -x '_journal.jsonl' -x '_sweep_stats.json' \
    -x 'stdout.txt' -x 'stderr.txt' "$sdir" "$qdir" || {
    echo "error: artefacts beyond the quarantined fig5 diverged from the reference" >&2
    exit 1
  }
  grep -q 'quarantined' "$qdir/stderr.txt" || {
    echo "error: degraded run did not report the quarantine on stderr" >&2
    exit 1
  }
  echo "quarantine OK: fig5 isolated, remaining artefacts intact, exit 3"
  rm -rf "$sdir" "$qdir"

  step "model checker: exhaustive pass, counterexample, deterministic replay"
  # A real protocol scenario must enumerate its bounded space to exhaustion
  # with no violation; the broken-retry fixture must yield a replayable
  # counterexample (exit 3) whose replay reproduces the violation (exit 3).
  mdir=$(mktemp -d)
  timeout 120 "$repro" --mc ckpt-crash --max-cell-seconds 60 \
    >"$mdir/pass.txt" 2>"$mdir/pass.stderr.txt"
  grep -q 'result: PASS (bounded space fully enumerated)' "$mdir/pass.txt" || {
    echo "error: --mc ckpt-crash did not exhaust its bounded space" >&2
    cat "$mdir/pass.txt" >&2 || true
    exit 1
  }
  set +e
  timeout 120 "$repro" --mc retry-lossy-broken --max-cell-seconds 60 \
    --json "$mdir" >"$mdir/viol.txt" 2>"$mdir/viol.stderr.txt"
  rc=$?
  set -e
  if [[ $rc -ne 3 ]]; then
    echo "error: --mc retry-lossy-broken exited $rc (want 3 = violation found)" >&2
    cat "$mdir/viol.txt" >&2 || true
    exit 1
  fi
  ce="$mdir/mc_retry-lossy-broken_counterexample.json"
  test -s "$ce" || {
    echo "error: violation produced no counterexample file" >&2
    exit 1
  }
  grep -q '"property": "safety.exactly-once"' "$ce" || {
    echo "error: counterexample names the wrong property" >&2
    cat "$ce" >&2 || true
    exit 1
  }
  head -1 "$mdir/mc_retry-lossy-broken.trace.jsonl" | grep -q '"kind":"trace_start"' || {
    echo "error: counterexample trace JSONL is missing or malformed" >&2
    exit 1
  }
  set +e
  timeout 120 "$repro" --mc-replay "$ce" >"$mdir/replay.txt" 2>"$mdir/replay.stderr.txt"
  rc=$?
  set -e
  if [[ $rc -ne 3 ]]; then
    echo "error: --mc-replay exited $rc (want 3 = violation reproduced)" >&2
    cat "$mdir/replay.txt" >&2 || true
    exit 1
  fi
  grep -q 'reproduced' "$mdir/replay.txt" || {
    echo "error: replay did not reproduce the recorded violation" >&2
    cat "$mdir/replay.txt" >&2 || true
    exit 1
  }
  echo "mc smoke OK: ckpt-crash exhausted, broken fixture counterexample found and replayed"
  rm -rf "$mdir"
fi

echo
echo "CI gate passed."
