#!/usr/bin/env bash
# CI gate for the workspace. Run from the repo root:
#
#   ./ci.sh          # full gate: fmt, clippy, build, tests, smoke run
#   ./ci.sh --quick  # skip the release build + smoke run (fast local check)
#
# Everything here runs fully offline: all third-party deps are vendored
# under vendor/, so no registry access is needed (or attempted).

set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

step() { echo; echo "==> $*"; }

step "rustfmt (check only)"
cargo fmt --all --check

step "clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

step "tests (debug, whole workspace)"
cargo test --workspace --quiet

if [[ $quick -eq 0 ]]; then
  step "release build"
  cargo build --release --workspace --quiet

  step "smoke: repro --quick --headline resilience"
  out=$(mktemp -d)
  cargo run --release -p bench --bin repro -- --quick --headline resilience --json "$out"
  test -s "$out/resilience.json" || {
    echo "error: resilience smoke run produced no JSON" >&2
    exit 1
  }
  # The artefact must contain a populated sweep, not just an empty shell.
  grep -q '"inflation"' "$out/resilience.json" || {
    echo "error: resilience.json has no sweep cells" >&2
    exit 1
  }
  echo "smoke OK: $(wc -c <"$out/resilience.json") bytes of resilience.json"
  rm -rf "$out"
fi

echo
echo "CI gate passed."
