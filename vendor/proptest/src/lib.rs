//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest the workspace uses: the `proptest!`
//! macro with an optional `#![proptest_config(...)]` header, range and tuple
//! strategies, `collection::vec`, and the `prop_assert!` family.
//!
//! Differences from real proptest, deliberately accepted:
//! * sampling is plain uniform random — no shrinking of failing cases;
//! * the RNG seed is a deterministic function of the test name, so a failure
//!   reproduces on every run (no persistence file needed).

use std::ops::Range;

/// Runner configuration (`cases` = iterations per property).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps offline CI fast while
        // still exercising a meaningful input space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs — skip, not a failure.
    Reject,
}

/// Deterministic RNG used by the runner (SplitMix64).
pub mod test_runner {
    /// SplitMix64: tiny, fast, and plenty for test-case sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed derived deterministically from a test name (FNV-1a).
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f` (real proptest's `prop_map`,
    /// minus shrinking — this stub never shrinks).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty integer strategy range");
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of an element strategy with a length drawn
    /// from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Assert a condition inside a property; on failure the case (with its
/// sampled inputs) is reported by the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Reject the current inputs (skip the case without failing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $p = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property '{}' failed at case {}: {}", stringify!($name), case, msg)
                    }
                }
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in -2.5..7.5f64, (a, b) in (0usize..4, 1i32..3)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.5..7.5).contains(&y), "y = {}", y);
            prop_assert!(a < 4 && (1..3).contains(&b));
        }

        #[test]
        fn vec_strategy_obeys_length(v in collection::vec(0.0..1.0f64, 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_is_reproducible() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
