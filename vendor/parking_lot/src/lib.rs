//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small API subset the workspace uses — `Mutex`/`RwLock` with
//! non-poisoning `lock()`/`read()`/`write()` — implemented over `std::sync`.
//! A poisoned std lock (a thread panicked while holding it) is recovered
//! into its inner guard, matching parking_lot's "no poisoning" semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let mc = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = mc.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is usable after a holder panicked.
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
