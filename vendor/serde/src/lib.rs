//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! replaces serde's generic data model with the one concrete representation
//! the workspace needs: [`Serialize`] converts a value into a JSON-shaped
//! [`Value`] tree, which the vendored `serde_json` renders. The derive
//! macros are re-exported from the companion `serde_derive` stand-in;
//! `Deserialize` derives expand to nothing (the workspace only writes JSON).

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped value tree produced by [`Serialize::to_value`].
///
/// Objects keep insertion order (a `Vec` of pairs, not a map) so rendered
/// JSON matches struct field order, like real `serde_json`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point (non-finite renders as `null`).
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with ordered keys.
    Object(Vec<(String, Value)>),
}

/// A type that can be converted to a [`Value`] tree.
///
/// This is the serialization half of serde's API surface, collapsed to the
/// single output format the workspace uses.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(7u32.to_value(), Value::UInt(7));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(vec![1u8, 2].to_value(), Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
    }
}
