//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the one type the workspace uses: [`Bytes`], an immutable
//! reference-counted byte buffer whose clones share the allocation (cheap
//! broadcast fan-out). Slicing views and the mutable builder types of the
//! real crate are not needed and not implemented.

use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer (clones share one allocation).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b.as_ptr(), c.as_ptr());
        assert_eq!(&*c, &[1, 2, 3]);
    }

    #[test]
    fn slice_api_via_deref() {
        let b = Bytes::from(&b"abcdefgh"[..]);
        assert_eq!(b.len(), 8);
        assert_eq!(b.chunks_exact(4).count(), 2);
    }
}
