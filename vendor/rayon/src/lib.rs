//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! supplies the `par_*` entry points the workspace uses, executed
//! **sequentially**. Every `par_*` method returns a [`ParIter`] wrapper that
//! behaves like the std iterator it wraps, plus the rayon-specific adaptors
//! (`reduce` with an identity closure). Numerical outputs are bit-identical
//! to a single-threaded rayon run, which keeps kernel checksums and the
//! determinism tests stable.

/// Number of "threads" the stand-in reports (the host parallelism, so code
/// sizing work per thread behaves sensibly).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run two closures (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Sequential "parallel iterator": wraps a std iterator and re-exposes the
/// rayon adaptor surface. Adaptors that exist on both (`map`, `enumerate`,
/// `zip`) are provided inherently so chains stay inside `ParIter` and can
/// end with rayon's two-closure [`ParIter::reduce`].
pub struct ParIter<I>(I);

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;
    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }
    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> ParIter<I> {
    /// rayon-shaped `map` (stays a `ParIter`).
    #[inline]
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// rayon-shaped `enumerate` (stays a `ParIter`).
    #[inline]
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// rayon-shaped `zip`; accepts anything iterable, like rayon accepts any
    /// `IntoParallelIterator`.
    #[inline]
    pub fn zip<J: IntoIterator>(self, other: J) -> ParIter<std::iter::Zip<I, J::IntoIter>> {
        ParIter(self.0.zip(other))
    }

    /// rayon's `reduce`: fold from an identity closure.
    #[inline]
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }
}

// ---------------------------------------------------------------------------
// Real thread pool: `ThreadPoolBuilder` / `ThreadPool` / `scope`
// ---------------------------------------------------------------------------
//
// Unlike the sequential `ParIter` adaptors above (which keep kernel
// checksums bit-identical to their std-iterator forms), the scope API below
// provides *genuine* parallelism for embarrassingly-parallel fan-out such as
// the `bench` sweep executor. Spawned tasks go into a shared injector queue;
// every worker (plus the calling thread, once the scope body returns) pops
// the next unclaimed task — idle workers therefore steal whatever work is
// left, giving dynamic load balance without per-worker deques.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

type Task<'env> = Box<dyn for<'x> FnOnce(&Scope<'x, 'env>) + Send + 'env>;

struct QueueState<'env> {
    tasks: VecDeque<Task<'env>>,
    running: usize,
    /// Set when the scope body has returned: no more top-level spawns will
    /// arrive (running tasks may still spawn nested work).
    sealed: bool,
}

struct TaskQueue<'env> {
    state: Mutex<QueueState<'env>>,
    cv: Condvar,
}

impl<'env> TaskQueue<'env> {
    fn new() -> Self {
        TaskQueue {
            state: Mutex::new(QueueState { tasks: VecDeque::new(), running: 0, sealed: false }),
            cv: Condvar::new(),
        }
    }

    fn push(&self, t: Task<'env>) {
        self.state.lock().unwrap().tasks.push_back(t);
        self.cv.notify_one();
    }

    fn seal(&self) {
        self.state.lock().unwrap().sealed = true;
        self.cv.notify_all();
    }

    /// Claim the next task, blocking while more work may still arrive.
    /// Returns `None` once the scope is sealed and every task has finished.
    fn pop(&self) -> Option<Task<'env>> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(t) = st.tasks.pop_front() {
                st.running += 1;
                return Some(t);
            }
            if st.sealed && st.running == 0 {
                return None;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn task_done(&self) {
        let mut st = self.state.lock().unwrap();
        st.running -= 1;
        if st.tasks.is_empty() && st.running == 0 {
            // Termination condition may now hold: release everyone blocked
            // in `pop` so they can observe it.
            self.cv.notify_all();
        }
    }
}

/// Decrements the running count even if the task panics, so sibling workers
/// never deadlock waiting for a task that will not report completion.
struct DoneGuard<'a, 'env>(&'a TaskQueue<'env>);

impl Drop for DoneGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.task_done();
    }
}

fn worker_loop<'env>(queue: &TaskQueue<'env>) {
    while let Some(task) = queue.pop() {
        let guard = DoneGuard(queue);
        task(&Scope { queue });
        drop(guard);
    }
}

fn run_scope<'env, F, R>(extra_workers: usize, f: F) -> R
where
    F: for<'x> FnOnce(&Scope<'x, 'env>) -> R,
{
    let queue = TaskQueue::new();
    std::thread::scope(|s| {
        for _ in 0..extra_workers {
            s.spawn(|| worker_loop(&queue));
        }
        let r = f(&Scope { queue: &queue });
        queue.seal();
        // The calling thread joins the pool until the queue drains. With
        // zero extra workers this degenerates to sequential execution in
        // exact spawn order — the deterministic `--jobs 1` path.
        worker_loop(&queue);
        r
    })
}

/// A spawn handle scoped to a [`ThreadPool::scope`] / [`scope`] invocation.
/// Tasks may borrow from the enclosing environment (`'env`) and may spawn
/// nested tasks through the scope reference they receive.
pub struct Scope<'x, 'env> {
    queue: &'x TaskQueue<'env>,
}

impl<'x, 'env> Scope<'x, 'env> {
    /// Queue `f` for execution by the pool before the scope ends.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'y> FnOnce(&Scope<'y, 'env>) + Send + 'env,
    {
        self.queue.push(Box::new(f));
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`] (never produced by
/// this stand-in, but part of the rayon-shaped API).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] with an explicit worker count.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool (default: host parallelism).
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Set the number of worker threads (0 = host parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible here; `Result` keeps the rayon shape.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { current_num_threads() } else { self.num_threads };
        Ok(ThreadPool { threads: n.max(1) })
    }
}

/// A pool of `threads` workers. Workers are spawned per [`ThreadPool::scope`]
/// call (scoped threads, so tasks may borrow the caller's stack) rather than
/// kept persistent — the scheduling semantics match rayon's.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The number of threads this pool runs tasks on (including the caller,
    /// which participates while a scope drains).
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `f`, executing everything it spawns on this pool; returns once
    /// all spawned tasks (including nested spawns) have completed.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'x> FnOnce(&Scope<'x, 'env>) -> R,
    {
        run_scope(self.threads.saturating_sub(1), f)
    }

    /// Run `op` "inside" the pool. The stand-in has no thread-local registry,
    /// so this simply invokes the closure.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }
}

/// Scope on an implicit global-sized pool (host parallelism).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'x> FnOnce(&Scope<'x, 'env>) -> R,
{
    run_scope(current_num_threads().saturating_sub(1), f)
}

/// The traits that give slices, ranges and collections their `par_*` methods.
pub mod prelude {
    pub use super::ParIter;

    /// `par_iter` / `par_chunks` on shared slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
        /// Sequential stand-in for `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
            ParIter(self.iter())
        }
        fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
            ParIter(self.chunks(chunk_size))
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
            ParIter(self.iter_mut())
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
            ParIter(self.chunks_mut(chunk_size))
        }
    }

    /// `into_par_iter` on anything that is `IntoIterator` (ranges, vectors).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for `into_par_iter`.
        fn into_par_iter(self) -> ParIter<Self::IntoIter> {
            ParIter(self.into_iter())
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chains_match_sequential() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s: f64 = v.par_chunks(7).map(|c| c.iter().sum::<f64>()).sum();
        assert_eq!(s, v.iter().sum::<f64>());

        let mut out = vec![0.0; 100];
        out.par_iter_mut().zip(v.par_iter()).for_each(|(o, x)| *o = 2.0 * x);
        assert_eq!(out[99], 198.0);

        let total: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(total, 45);
    }

    #[test]
    fn rayon_style_reduce_with_identity() {
        let (s, n) = (0..5u64)
            .into_par_iter()
            .map(|i| (i as f64, 1u64))
            .reduce(|| (0.0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!((s, n), (10.0, 5));
    }

    #[test]
    fn enumerate_for_each_on_chunks_mut() {
        let mut v = vec![0usize; 9];
        v.par_chunks_mut(3).enumerate().for_each(|(ci, c)| c.iter_mut().for_each(|x| *x = ci));
        assert_eq!(v, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1, || "x");
        assert_eq!((a, b), (1, "x"));
    }

    #[test]
    fn pool_scope_runs_every_task_with_borrowed_state() {
        use std::sync::Mutex;
        let slots: Vec<Mutex<u64>> = (0..64).map(|_| Mutex::new(0)).collect();
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.scope(|s| {
            for (i, slot) in slots.iter().enumerate() {
                s.spawn(move |_| *slot.lock().unwrap() = i as u64 + 1);
            }
        });
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(*slot.lock().unwrap(), i as u64 + 1);
        }
    }

    #[test]
    fn single_thread_scope_runs_in_spawn_order() {
        use std::sync::Mutex;
        let order = Mutex::new(Vec::new());
        let pool = super::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.scope(|s| {
            for i in 0..16 {
                let order = &order;
                s.spawn(move |_| order.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn nested_spawns_complete_before_scope_returns() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.scope(|s| {
            for _ in 0..8 {
                let count = &count;
                s.spawn(move |inner| {
                    count.fetch_add(1, Ordering::SeqCst);
                    inner.spawn(move |_| {
                        count.fetch_add(1, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn free_scope_uses_host_parallelism() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..10 {
                let count = &count;
                s.spawn(move |_| {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn builder_defaults_are_sane() {
        let pool = super::ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
        assert_eq!(pool.install(|| 7), 7);
    }
}
