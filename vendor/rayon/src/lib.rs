//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! supplies the `par_*` entry points the workspace uses, executed
//! **sequentially**. Every `par_*` method returns a [`ParIter`] wrapper that
//! behaves like the std iterator it wraps, plus the rayon-specific adaptors
//! (`reduce` with an identity closure). Numerical outputs are bit-identical
//! to a single-threaded rayon run, which keeps kernel checksums and the
//! determinism tests stable.

/// Number of "threads" the stand-in reports (the host parallelism, so code
/// sizing work per thread behaves sensibly).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run two closures (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Sequential "parallel iterator": wraps a std iterator and re-exposes the
/// rayon adaptor surface. Adaptors that exist on both (`map`, `enumerate`,
/// `zip`) are provided inherently so chains stay inside `ParIter` and can
/// end with rayon's two-closure [`ParIter::reduce`].
pub struct ParIter<I>(I);

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;
    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }
    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> ParIter<I> {
    /// rayon-shaped `map` (stays a `ParIter`).
    #[inline]
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// rayon-shaped `enumerate` (stays a `ParIter`).
    #[inline]
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// rayon-shaped `zip`; accepts anything iterable, like rayon accepts any
    /// `IntoParallelIterator`.
    #[inline]
    pub fn zip<J: IntoIterator>(self, other: J) -> ParIter<std::iter::Zip<I, J::IntoIter>> {
        ParIter(self.0.zip(other))
    }

    /// rayon's `reduce`: fold from an identity closure.
    #[inline]
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }
}

/// The traits that give slices, ranges and collections their `par_*` methods.
pub mod prelude {
    pub use super::ParIter;

    /// `par_iter` / `par_chunks` on shared slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
        /// Sequential stand-in for `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
            ParIter(self.iter())
        }
        fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
            ParIter(self.chunks(chunk_size))
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
            ParIter(self.iter_mut())
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
            ParIter(self.chunks_mut(chunk_size))
        }
    }

    /// `into_par_iter` on anything that is `IntoIterator` (ranges, vectors).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for `into_par_iter`.
        fn into_par_iter(self) -> ParIter<Self::IntoIter> {
            ParIter(self.into_iter())
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chains_match_sequential() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s: f64 = v.par_chunks(7).map(|c| c.iter().sum::<f64>()).sum();
        assert_eq!(s, v.iter().sum::<f64>());

        let mut out = vec![0.0; 100];
        out.par_iter_mut().zip(v.par_iter()).for_each(|(o, x)| *o = 2.0 * x);
        assert_eq!(out[99], 198.0);

        let total: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(total, 45);
    }

    #[test]
    fn rayon_style_reduce_with_identity() {
        let (s, n) = (0..5u64)
            .into_par_iter()
            .map(|i| (i as f64, 1u64))
            .reduce(|| (0.0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!((s, n), (10.0, 5));
    }

    #[test]
    fn enumerate_for_each_on_chunks_mut() {
        let mut v = vec![0usize; 9];
        v.par_chunks_mut(3).enumerate().for_each(|(ci, c)| c.iter_mut().for_each(|x| *x = ci));
        assert_eq!(v, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1, || "x");
        assert_eq!((a, b), (1, "x"));
    }
}
