//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io (so no `syn`/`quote`);
//! this proc macro hand-parses the derive input token stream. It supports
//! exactly the shapes the workspace derives on: structs with named fields,
//! and enums whose variants are unit or named-struct (no generics, no
//! `#[serde(...)]` attributes). Anything else is a compile-time panic with
//! a clear message.
//!
//! `#[derive(Serialize)]` emits an `impl ::serde::Serialize` building the
//! vendored `serde::Value` tree; `#[derive(Deserialize)]` expands to nothing
//! (the workspace never deserializes).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item.body {
        Body::Struct(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{pairs}])\n\
                     }}\n\
                 }}",
                name = item.name
            )
        }
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!(
                        "{name}::{v} => \
                         ::serde::Value::String(::std::string::String::from(\"{v}\")),",
                        name = item.name
                    ),
                    Some(fs) => {
                        let binds = fs.join(", ");
                        let pairs: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => \
                             ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Object(::std::vec![{pairs}])\
                             )]),",
                            name = item.name
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                name = item.name
            )
        }
    };
    code.parse().expect("serde_derive stand-in generated invalid Rust")
}

/// Derive stub for `serde::Deserialize` — expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

struct Item {
    name: String,
    body: Body,
}

enum Body {
    /// Named fields of a struct.
    Struct(Vec<String>),
    /// Variants: name plus `Some(named fields)` for struct variants.
    Enum(Vec<(String, Option<Vec<String>>)>),
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_vis(&toks, &mut i);

    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stand-in: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stand-in: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in: generic type `{name}` is not supported");
        }
    }
    let body_stream = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(_)) | Some(TokenTree::Punct(_)) => {
            panic!("serde_derive stand-in: `{name}` must have named fields")
        }
        _ => panic!("serde_derive stand-in: missing body for `{name}`"),
    };

    let body = match kind.as_str() {
        "struct" => Body::Struct(named_fields(body_stream)),
        "enum" => Body::Enum(enum_variants(body_stream)),
        other => panic!("serde_derive stand-in: cannot derive for `{other}`"),
    };
    Item { name, body }
}

fn skip_attributes_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // `#` + `[...]`
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Field names from the token stream of a `{ ... }` body with named fields.
/// Commas inside generic arguments (`HashMap<K, V>`) are skipped by tracking
/// angle-bracket depth.
fn named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attributes_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        match &toks[i] {
            TokenTree::Ident(id) => names.push(id.to_string()),
            other => panic!("serde_derive stand-in: expected field name, got {other}"),
        }
        i += 1;
        let mut depth: i32 = 0;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    names
}

fn enum_variants(body: TokenStream) -> Vec<(String, Option<Vec<String>>)> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attributes_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stand-in: expected variant name, got {other}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(named_fields(g.stream()))
            }
            Some(TokenTree::Group(_)) => {
                panic!("serde_derive stand-in: tuple variant `{name}` is not supported")
            }
            _ => None,
        };
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == '=' {
                panic!("serde_derive stand-in: explicit discriminants are not supported");
            }
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((name, fields));
    }
    variants
}
