//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! keeps the workspace's `benches/` compiling and runnable with `cargo
//! bench`. There is no statistics engine: each benchmark runs its closure a
//! small fixed number of iterations (after one warm-up call) and prints the
//! mean wall time. Good enough to smoke-test the benches and eyeball
//! regressions; not a measurement instrument.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { sample_size: self.sample_size, _parent: self }
    }

    /// Run one benchmark directly on the driver.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_benchmark(id.as_ref(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples (iterations here) per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Define and immediately run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_benchmark(id.as_ref(), self.sample_size, f);
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` `iters` times, accumulating wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One un-timed call to warm caches and lazy state.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { iters: sample_size as u64, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = if b.elapsed.is_zero() { Duration::ZERO } else { b.elapsed / sample_size as u32 };
    println!("  {id}: mean {mean:?} over {sample_size} iters");
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut count = 0u32;
        g.bench_function("counter", |b| b.iter(|| count += 1));
        g.finish();
        // warm-up + 3 timed iterations
        assert_eq!(count, 4);
    }
}
