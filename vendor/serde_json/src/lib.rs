//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde::Value` tree as JSON text. Matches real
//! serde_json's observable conventions for the output the workspace emits:
//! struct field order is preserved, pretty output uses two-space indent,
//! and non-finite floats render as `null`.

use serde::Serialize;
use std::fmt;

mod parse;

pub use parse::from_str;
// Real serde_json has its own `Value`; the stand-in reuses the vendored
// serde's tree so the serializer and parser share one representation.
pub use serde::Value;

/// Serialization or parse error.
#[derive(Debug)]
pub struct Error(pub(crate) String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_f64(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            write_seq(out, indent, level, items.len(), '[', ']', |out, i, lvl| {
                write_value(out, &items[i], indent, lvl)
            })
        }
        Value::Object(pairs) => {
            write_seq(out, indent, level, pairs.len(), '{', '}', |out, i, lvl| {
                let (k, pv) = &pairs[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, pv, indent, lvl);
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<&str>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=level {
                out.push_str(pad);
            }
        }
        write_item(out, i, level + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(pad);
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    if x == x.trunc() && x.abs() < 1e15 {
        // Keep whole floats visibly floating point, like serde_json ("2.0").
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn compact_and_pretty_rendering() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("hpl".into())),
            ("n".into(), Value::UInt(4096)),
            ("gflops".into(), Value::Float(2.0)),
            ("ok".into(), Value::Bool(true)),
            ("tags".into(), Value::Array(vec![Value::Int(-1), Value::Null])),
            ("empty".into(), Value::Array(vec![])),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"hpl","n":4096,"gflops":2.0,"ok":true,"tags":[-1,null],"empty":[]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"hpl\""));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
    }
}
