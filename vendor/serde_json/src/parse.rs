//! A minimal JSON parser producing the vendored [`Value`] tree — enough for
//! the workspace's golden-figure tests to load artefacts back and compare
//! them field-by-field with numeric tolerances.
//!
//! Faithful to the subset the serializer emits plus standard JSON niceties:
//! objects preserve key order, integers without `.`/`e` parse as
//! `Int`/`UInt` (so tests can demand exactness for counts and ids while
//! applying a relative tolerance to floats), and `\uXXXX` escapes decode
//! including surrogate pairs.

use serde::Value;

use crate::Error;

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a second \uXXXX must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = from_str(r#"{"a": [1, -2, 3.5, 1e3, true, null, "x\n\u00e9"], "b": {}}"#).unwrap();
        let Value::Object(pairs) = v else { panic!("not an object") };
        assert_eq!(pairs[0].0, "a");
        let Value::Array(items) = &pairs[0].1 else { panic!("not an array") };
        assert!(matches!(items[0], Value::UInt(1)));
        assert!(matches!(items[1], Value::Int(-2)));
        assert!(matches!(items[2], Value::Float(x) if x == 3.5));
        assert!(matches!(items[3], Value::Float(x) if x == 1000.0));
        assert!(matches!(items[4], Value::Bool(true)));
        assert!(matches!(items[5], Value::Null));
        assert!(matches!(&items[6], Value::String(s) if s == "x\né"));
        assert!(matches!(&pairs[1].1, Value::Object(p) if p.is_empty()));
    }

    #[test]
    fn round_trips_serializer_output() {
        let v = Value::Object(vec![
            ("nodes".into(), Value::UInt(96)),
            ("gflops".into(), Value::Float(97.25)),
            ("whole".into(), Value::Float(2.0)),
            ("label".into(), Value::String("HPL \"weak\"".into())),
            ("cells".into(), Value::Array(vec![Value::Int(-1), Value::Null])),
        ]);
        for render in [crate::to_string(&v).unwrap(), crate::to_string_pretty(&v).unwrap()] {
            let back = from_str(&render).unwrap();
            // Whole floats render as "2.0" and must come back as floats, so
            // the round trip preserves the int/float distinction exactly.
            assert_eq!(crate::to_string(&back).unwrap(), crate::to_string(&v).unwrap());
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\"", "nul"] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }
}
