//! Quickstart: run the real micro-kernel suite on the host, then model the
//! same suite on every platform of the paper's Table 1.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use socready::kernels::{fig3_profiles, smoke_run_all};
use socready::power::{suite_energy, PowerModel};
use socready::prelude::*;

fn main() {
    // 1. The suite is real, executable code: run every kernel at test size,
    //    sequentially and with rayon, and check they agree.
    println!("== executing the Table-2 micro-kernel suite on this host ==");
    for r in smoke_run_all() {
        println!(
            "  {:6} seq/par agree: {:5}  checksum: {:.6e}",
            r.tag, r.seq_par_agree, r.checksum
        );
    }

    // 2. The same kernels, modelled on the paper's platforms at paper scale.
    println!("\n== modelling one suite iteration on the Table-1 platforms ==");
    let suite = fig3_profiles();
    for p in Platform::table1() {
        let pm = PowerModel::for_platform(p.id).expect("power model");
        let f = p.soc.fmax_ghz;
        let (t1, e1) = suite_energy(&p.soc, &pm, f, 1, &suite);
        let (tn, en) = suite_energy(&p.soc, &pm, f, p.soc.threads, &suite);
        println!(
            "  {:12} @{:.1}GHz  serial: {:6.2}s {:6.2}J   {}-thread: {:6.2}s {:6.2}J",
            p.id, f, t1, e1, p.soc.threads, tn, en
        );
    }

    // 3. And a real message-passing job on a simulated ARM cluster.
    println!("\n== running a 16-rank allreduce on the Tibidabo model ==");
    let m = Machine::tibidabo();
    let run = run_mpi(m.job(16), |mut r| async move {
        let rank_value = (r.rank() + 1) as f64;
        r.allreduce(ReduceOp::Sum, vec![rank_value]).await[0]
    })
    .expect("simulation failed");
    println!("  every rank computed sum = {} in {} of virtual time", run.results[0], run.elapsed);
}
