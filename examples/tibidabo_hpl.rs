//! Tibidabo HPL: the §4 cluster experiment end-to-end.
//!
//! First solves a small system with the *real* distributed LU (Execute mode,
//! residual-checked), then runs the paper's weak-scaling measurement on the
//! Tibidabo model and reports the Green500 numbers.
//!
//! ```text
//! cargo run --release --example tibidabo_hpl -- --ranks <nodes>
//! ```

use socready::apps::hpl::{run_hpl, HplConfig};
use socready::apps::Mode;
use socready::prelude::*;

/// `--ranks N` (also accepts a bare positional count for compatibility).
fn ranks_arg(default: u32) -> u32 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--ranks" {
            return args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--ranks needs a number");
                std::process::exit(2);
            });
        }
        if let Ok(n) = a.parse() {
            return n;
        }
    }
    default
}

fn main() {
    let nodes: u32 = ranks_arg(16);
    let m = Machine::tibidabo();

    // 1. Correctness first: a real factorisation with pivoting on 4 ranks.
    let small = HplConfig::small(96, 8);
    let res = run_hpl(m.job(4), small);
    println!(
        "Execute mode, N=96 on 4 ranks: residual = {:.3} (HPL passes < 16)",
        res.residual.expect("verification runs on rank 0")
    );
    assert!(res.residual.unwrap() < 16.0);

    // 2. The paper's measurement: weak scaling at ~60% of node memory.
    let cfg = HplConfig::tibidabo_weak(nodes);
    println!(
        "\nweak-scaling HPL on {nodes} Tibidabo nodes (N = {}, nb = {}, {:?} mode)...",
        cfg.n,
        cfg.nb,
        Mode::Model
    );
    let run = run_mpi(m.job(nodes), move |mut r| async move {
        let t0 = r.now();
        socready::apps::hpl::hpl_rank(&mut r, &cfg).await;
        (r.now() - t0).as_secs_f64()
    })
    .expect("cluster simulation failed");
    let secs = run.results.iter().cloned().fold(0.0, f64::max);
    let gflops = cfg.flops() / secs / 1e9;
    let peak = m.peak_gflops(nodes);
    let g = green500(&m, &run, nodes, 1.0, gflops);
    println!("  time          : {secs:.1} virtual seconds");
    println!(
        "  sustained     : {gflops:.1} GFLOPS ({:.1}% of {peak:.0} GFLOPS peak)",
        100.0 * gflops / peak
    );
    println!("  system power  : {:.0} W", g.watts);
    println!("  Green500      : {:.1} MFLOPS/W", g.mflops_per_watt);
    println!("\npaper, 96 nodes: 97 GFLOPS, 51% efficiency, 120 MFLOPS/W");
}
