//! Tibidabo HPL: the §4 cluster experiment end-to-end.
//!
//! First solves a small system with the *real* distributed LU (Execute mode,
//! residual-checked), then runs the paper's weak-scaling measurement on the
//! Tibidabo model and reports the Green500 numbers.
//!
//! ```text
//! cargo run --release --example tibidabo_hpl -- --ranks <nodes>
//! cargo run --release --example tibidabo_hpl -- --ranks <nodes> --trace hpl.jsonl
//! ```
//!
//! With `--trace PATH` every simulated run records a structured DES trace
//! (JSONL, docs/TRACE_FORMAT.md); fold it into a flamegraph with
//! `trace2flame PATH`.

use std::sync::Arc;

use des::RingRecorder;
use socready::apps::hpl::{run_hpl, HplConfig};
use socready::apps::Mode;
use socready::prelude::*;

/// `--ranks N` (also accepts a bare positional count for compatibility).
fn ranks_arg(default: u32) -> u32 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--ranks" {
            return args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--ranks needs a number");
                std::process::exit(2);
            });
        }
        if a == "--trace" {
            args.next(); // value consumed by trace_arg
            continue;
        }
        if let Ok(n) = a.parse() {
            return n;
        }
    }
    default
}

/// `--trace PATH`: where to write the JSONL trace, if requested.
fn trace_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return Some(args.next().map(Into::into).unwrap_or_else(|| {
                eprintln!("--trace needs a path");
                std::process::exit(2);
            }));
        }
    }
    None
}

fn main() {
    let nodes: u32 = ranks_arg(16);
    let trace_path = trace_arg();
    let recorder = trace_path.as_ref().map(|_| Arc::new(RingRecorder::with_capacity(1 << 20)));
    if let Some(rec) = &recorder {
        simmpi::set_default_tracer(Some(rec.clone()));
    }
    // Beyond the prototype's 192 nodes, switch to the §7-style scaled model
    // (same Tegra-2 node and GbE tree, more edge switches).
    let m = if nodes > Machine::tibidabo().nodes() {
        let m = Machine::tibidabo_scaled(nodes);
        println!("note: {nodes} ranks exceeds Tibidabo's 192 nodes; using {}", m.name);
        m
    } else {
        Machine::tibidabo()
    };

    // 1. Correctness first: a real factorisation with pivoting on 4 ranks.
    let small = HplConfig::small(96, 8);
    let res = run_hpl(m.job(4), small);
    println!(
        "Execute mode, N=96 on 4 ranks: residual = {:.3} (HPL passes < 16)",
        res.residual.expect("verification runs on rank 0")
    );
    assert!(res.residual.unwrap() < 16.0);

    // 2. The paper's measurement: weak scaling at ~60% of node memory.
    let cfg = HplConfig::tibidabo_weak(nodes);
    println!(
        "\nweak-scaling HPL on {nodes} Tibidabo nodes (N = {}, nb = {}, {:?} mode)...",
        cfg.n,
        cfg.nb,
        Mode::Model
    );
    let run = run_mpi(m.job(nodes), move |mut r| async move {
        let t0 = r.now();
        socready::apps::hpl::hpl_rank(&mut r, &cfg).await;
        (r.now() - t0).as_secs_f64()
    })
    .expect("cluster simulation failed");
    let secs = run.results.iter().cloned().fold(0.0, f64::max);
    let gflops = cfg.flops() / secs / 1e9;
    let peak = m.peak_gflops(nodes);
    let g = green500(&m, &run, nodes, 1.0, gflops);
    println!("  time          : {secs:.1} virtual seconds");
    println!(
        "  sustained     : {gflops:.1} GFLOPS ({:.1}% of {peak:.0} GFLOPS peak)",
        100.0 * gflops / peak
    );
    println!("  system power  : {:.0} W", g.watts);
    println!("  Green500      : {:.1} MFLOPS/W", g.mflops_per_watt);
    println!("\npaper, 96 nodes: 97 GFLOPS, 51% efficiency, 120 MFLOPS/W");

    if let (Some(path), Some(rec)) = (trace_path, recorder) {
        let records = rec.drain();
        socready::harness::write_trace(&path, &records, rec.dropped()).expect("write trace");
        eprintln!(
            "wrote {} trace records to {} ({} dropped); fold with: trace2flame {}",
            records.len(),
            path.display(),
            rec.dropped(),
            path.display()
        );
    }
}
