//! Cluster what-if: the paper's §7 outlook, quantified — what happens to the
//! Fig 6 applications and the Green500 number when Tibidabo's Tegra 2 nodes
//! are replaced with Exynos-5250 or projected ARMv8 nodes?
//!
//! ```text
//! cargo run --release --example cluster_whatif
//! ```

use socready::apps::hpl::HplConfig;
use socready::apps::sem::{run_sem, SemConfig};
use socready::prelude::*;

fn hpl_on(machine: &Machine, nodes: u32) -> (f64, f64, f64) {
    let cfg = HplConfig {
        // Same global problem on every machine for a fair cross-machine race.
        n: 16_384,
        nb: 128,
        mode: Mode::Model,
    };
    let run = run_mpi(machine.job(nodes), move |mut r| async move {
        let t0 = r.now();
        socready::apps::hpl::hpl_rank(&mut r, &cfg).await;
        (r.now() - t0).as_secs_f64()
    })
    .expect("simulation failed");
    let secs = run.results.iter().cloned().fold(0.0, f64::max);
    let gflops = cfg.flops() / secs / 1e9;
    let g = green500(machine, &run, nodes, machine.platform.soc.fmax_ghz, gflops);
    (secs, gflops, g.mflops_per_watt)
}

fn main() {
    let nodes = 16;
    let machines =
        [Machine::tibidabo(), Machine::arndale_cluster(nodes), Machine::armv8_cluster(nodes)];

    println!("fixed-size HPL (N=16384) on {nodes} nodes of each machine:\n");
    println!("{:<28} {:>10} {:>10} {:>12}", "machine", "time (s)", "GFLOPS", "MFLOPS/W");
    for m in &machines {
        let (t, gf, mw) = hpl_on(m, nodes);
        println!("{:<28} {:>10.1} {:>10.1} {:>12.1}", m.name, t, gf, mw);
    }

    println!("\nSPECFEM3D-style SEM strong scaling on each machine ({nodes} nodes):");
    for m in &machines {
        let cfg = SemConfig { steps: 10, ..SemConfig::fig6() };
        let (t, _) = run_sem(m.job(nodes), cfg);
        println!("  {:<28} {:>8.2} s/10 steps", m.name, t);
    }

    println!(
        "\nThe projection illustrates the paper's conclusion: the missing piece is not\n\
         the core — ARMv8-class mobile silicon closes most of the gap — but the\n\
         server features (ECC, integrated NICs, 64-bit) catalogued in S6.3."
    );
}
