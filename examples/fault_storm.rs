//! Fault storm: the resilience layer end-to-end.
//!
//! Three demonstrations on the simulated cluster stack:
//!
//! 1. a lossy link survived by bounded-backoff retransmission;
//! 2. an Execute-mode HPL campaign that rides out node crashes and a DRAM
//!    bit-flip via coordinated checkpoint/restart + residual-based SDC
//!    detection — and still produces a *verified* answer;
//! 3. the same crash schedule without checkpoints, which never finishes.
//!
//! Everything is deterministic: rerun it and every virtual timestamp,
//! retransmission and fault report is bit-identical.
//!
//! ```text
//! cargo run --release --example fault_storm
//! ```

use socready::apps::hpl::HplConfig;
use socready::apps::resilience::{run_hpl_resilient, ResilienceConfig};
use socready::des::{FaultEvent, FaultKind, FaultPlan};
use socready::mpi::RetryPolicy;
use socready::prelude::*;

fn crash(node: u32, us: u64) -> FaultEvent {
    FaultEvent { at: SimTime::from_micros(us), kind: FaultKind::NodeCrash { node } }
}

fn main() {
    // ---- 1. Lossy link: retransmit with exponential backoff --------------
    let lossy = FaultPlan::from_events(vec![FaultEvent {
        at: SimTime::ZERO,
        kind: FaultKind::LinkDegrade { node: 1, loss: 0.4, duration: SimTime::from_secs(3600) },
    }]);
    let spec = JobSpec::new(Platform::tegra2(), 2)
        .with_fault_plan(lossy)
        .with_retry(RetryPolicy { max_retries: 24, ..RetryPolicy::default() });
    let run = run_mpi(spec, |mut r| async move {
        for m in 0..32u32 {
            if r.rank() == 0 {
                r.send(1, m, Msg::from_f64s(&[1.0, 2.0, 3.0, 4.0])).await;
            } else {
                assert_eq!(r.recv(0, m).await.to_f64s(), [1.0, 2.0, 3.0, 4.0]);
            }
        }
    })
    .expect("every message survives loss < 1 with enough retries");
    println!("lossy link (40% loss): 32 messages delivered intact");
    println!("  retransmissions: {}, elapsed: {:?}", run.net.retransmits, run.elapsed);

    // ---- 2. Crash storm, checkpoint/restart on ---------------------------
    // Two ranks on physical nodes {0,1}; nodes 2.. are spares. A fresh
    // crash lands in every attempt window.
    let storm = FaultPlan::from_events(vec![crash(1, 1000), crash(2, 2100), crash(3, 3200)]);
    let base = JobSpec::new(Platform::tegra2(), 2).with_topology(TopologySpec::Star { nodes: 8 });
    let cfg = HplConfig::small(64, 8);
    let rc = ResilienceConfig {
        ckpt_every_panels: 2,
        write_bw_bytes: 200e6,
        restart_overhead: SimTime::from_micros(100),
        max_attempts: 8,
        ..ResilienceConfig::default()
    };
    let rep = run_hpl_resilient(base.clone(), cfg, &rc, &storm);
    println!("\ncrash storm with checkpoint/restart:");
    println!("  completed      : {}", rep.completed);
    println!("  attempts       : {}", rep.attempts);
    println!("  crashes        : {} (spares used: {})", rep.crashes, rep.spares_used);
    println!("  residual       : {:?} (HPL passes < 16)", rep.residual);
    println!(
        "  time-to-solution: {:.3} ms vs {:.3} ms clean ({:.2}x inflation)",
        rep.total_secs * 1e3,
        rep.clean_secs * 1e3,
        rep.inflation
    );
    assert!(rep.completed && rep.residual.unwrap() < 16.0);

    // ---- 2b. Silent data corruption, caught by the residual --------------
    // A DRAM bit-flip after the last checkpoint corrupts the live matrix;
    // the first pass "succeeds" with a wrong answer, the scaled residual
    // exposes it, and the rollback re-runs clean.
    let flip = FaultPlan::from_events(vec![FaultEvent {
        at: SimTime::from_micros(1800),
        kind: FaultKind::BitFlip { node: 0 },
    }]);
    let sdc = run_hpl_resilient(
        JobSpec::new(Platform::tegra2(), 2),
        HplConfig::small(48, 8),
        &ResilienceConfig { ckpt_every_panels: 2, ..ResilienceConfig::default() },
        &flip,
    );
    println!("\nDRAM bit-flip (silent data corruption):");
    println!("  SDC detected   : {} (attempts: {})", sdc.sdc_detected, sdc.attempts);
    println!("  final residual : {:?} — verified after rollback", sdc.residual);
    assert!(sdc.completed && sdc.sdc_detected >= 1);

    // ---- 3. The same storm without checkpoints ---------------------------
    let scratch = run_hpl_resilient(
        base,
        cfg,
        &ResilienceConfig { ckpt_every_panels: 0, max_attempts: 3, ..rc },
        &storm,
    );
    println!("\nsame storm, restart-from-scratch (no checkpoints):");
    println!(
        "  completed      : {} after {} attempts ({} crashes)",
        scratch.completed, scratch.attempts, scratch.crashes
    );
    assert!(!scratch.completed, "scratch restart must keep losing its work");
    println!("\ncheckpointing is what turns a lethal fault rate into a slowdown.");
}
