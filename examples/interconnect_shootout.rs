//! Interconnect shoot-out: §4.1 / Fig 7 — TCP/IP vs Open-MX, PCIe vs USB.
//!
//! ```text
//! cargo run --release --example interconnect_shootout
//! ```

use socready::mpi::{pingpong, JobSpec};
use socready::net::{penalty_table, ProtocolModel};
use socready::prelude::*;

fn main() {
    let cases = [
        ("Tegra2  (PCIe NIC)  TCP/IP ", Platform::tegra2(), 1.0, ProtocolModel::tcp_ip()),
        ("Tegra2  (PCIe NIC)  Open-MX", Platform::tegra2(), 1.0, ProtocolModel::open_mx()),
        ("Exynos5 (USB3 NIC)  TCP/IP ", Platform::exynos5250(), 1.0, ProtocolModel::tcp_ip()),
        ("Exynos5 (USB3 NIC)  Open-MX", Platform::exynos5250(), 1.0, ProtocolModel::open_mx()),
        ("Exynos5 @1.4GHz     TCP/IP ", Platform::exynos5250(), 1.4, ProtocolModel::tcp_ip()),
        ("Exynos5 @1.4GHz     Open-MX", Platform::exynos5250(), 1.4, ProtocolModel::open_mx()),
    ];
    println!("{:<30} {:>12} {:>12}", "configuration", "latency (us)", "BW (MB/s)");
    for (name, plat, freq, proto) in cases {
        let spec = JobSpec::new(plat, 2).with_freq(freq).with_proto(proto);
        let lat = pingpong(spec.clone(), &[4], 3)[0].latency_us;
        let bw = pingpong(spec, &[16 << 20], 1)[0].bandwidth_mbs;
        println!("{name:<30} {lat:>12.1} {bw:>12.1}");
    }
    println!("\npaper: Tegra2 100/65 us, 65/117 MB/s; Exynos 125/93 us, 63/69 MB/s (75 @1.4GHz)");

    println!("\nwhat a given latency costs in execution time (S4.1, after [36]):");
    for row in penalty_table(&[65.0, 100.0], 2.0) {
        println!(
            "  {:>5.0} us  ->  +{:>2.0}% on a Sandy Bridge node, +{:>2.0}% on an ARM node",
            row.latency_us,
            100.0 * row.snb_penalty,
            100.0 * row.arm_penalty
        );
    }
}
