//! Interconnect shoot-out: §4.1 / Fig 7 — TCP/IP vs Open-MX, PCIe vs USB.
//!
//! ```text
//! cargo run --release --example interconnect_shootout -- --ranks <N>
//! cargo run --release --example interconnect_shootout -- --trace ring.jsonl
//! ```
//!
//! `--ranks N` sizes the ping-ring section (default 64): N ranks pass a
//! token around a ring under each protocol, one event-driven process per
//! rank in a single OS thread. `--trace PATH` records a structured DES
//! trace of every run (JSONL, docs/TRACE_FORMAT.md) for `trace2flame`.

use std::sync::Arc;

use des::RingRecorder;
use socready::mpi::{pingpong, run_mpi, JobSpec, Msg};
use socready::net::{penalty_table, ProtocolModel};
use socready::prelude::*;

/// `--ranks N` flag (default when absent).
fn ranks_arg(default: u32) -> u32 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--ranks" {
            return args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--ranks needs a number");
                std::process::exit(2);
            });
        }
    }
    default
}

/// `--trace PATH`: where to write the JSONL trace, if requested.
fn trace_arg() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return Some(args.next().map(Into::into).unwrap_or_else(|| {
                eprintln!("--trace needs a path");
                std::process::exit(2);
            }));
        }
    }
    None
}

fn main() {
    let trace_path = trace_arg();
    let recorder = trace_path.as_ref().map(|_| Arc::new(RingRecorder::with_capacity(1 << 20)));
    if let Some(rec) = &recorder {
        simmpi::set_default_tracer(Some(rec.clone()));
    }
    let cases = [
        ("Tegra2  (PCIe NIC)  TCP/IP ", Platform::tegra2(), 1.0, ProtocolModel::tcp_ip()),
        ("Tegra2  (PCIe NIC)  Open-MX", Platform::tegra2(), 1.0, ProtocolModel::open_mx()),
        ("Exynos5 (USB3 NIC)  TCP/IP ", Platform::exynos5250(), 1.0, ProtocolModel::tcp_ip()),
        ("Exynos5 (USB3 NIC)  Open-MX", Platform::exynos5250(), 1.0, ProtocolModel::open_mx()),
        ("Exynos5 @1.4GHz     TCP/IP ", Platform::exynos5250(), 1.4, ProtocolModel::tcp_ip()),
        ("Exynos5 @1.4GHz     Open-MX", Platform::exynos5250(), 1.4, ProtocolModel::open_mx()),
    ];
    println!("{:<30} {:>12} {:>12}", "configuration", "latency (us)", "BW (MB/s)");
    for (name, plat, freq, proto) in cases {
        let spec = JobSpec::new(plat, 2).with_freq(freq).with_proto(proto);
        let lat = pingpong(spec.clone(), &[4], 3)[0].latency_us;
        let bw = pingpong(spec, &[16 << 20], 1)[0].bandwidth_mbs;
        println!("{name:<30} {lat:>12.1} {bw:>12.1}");
    }
    println!("\npaper: Tegra2 100/65 us, 65/117 MB/s; Exynos 125/93 us, 63/69 MB/s (75 @1.4GHz)");

    let ranks = ranks_arg(64);
    println!("\n{ranks}-rank ping-ring (one event-driven process per rank):");
    for (name, proto) in
        [("TCP/IP ", ProtocolModel::tcp_ip()), ("Open-MX", ProtocolModel::open_mx())]
    {
        let spec = JobSpec::new(Platform::tegra2(), ranks).with_proto(proto);
        let run = run_mpi(spec, |mut r| async move {
            let p = r.size();
            if p > 1 {
                if r.rank() == 0 {
                    r.send(1, 0, Msg::from_u64s(&[0])).await;
                    r.recv(p - 1, 0).await;
                } else {
                    let hops = r.recv(r.rank() - 1, 0).await.to_u64s()[0];
                    r.send((r.rank() + 1) % p, 0, Msg::from_u64s(&[hops + 1])).await;
                }
            }
            r.now().as_micros_f64()
        })
        .expect("ping-ring failed");
        let total_us = run.results.iter().cloned().fold(0.0, f64::max);
        println!("  {name}: {total_us:>10.1} us total, {:>7.2} us/hop", total_us / ranks as f64);
    }

    println!("\nwhat a given latency costs in execution time (S4.1, after [36]):");
    for row in penalty_table(&[65.0, 100.0], 2.0) {
        println!(
            "  {:>5.0} us  ->  +{:>2.0}% on a Sandy Bridge node, +{:>2.0}% on an ARM node",
            row.latency_us,
            100.0 * row.snb_penalty,
            100.0 * row.arm_penalty
        );
    }

    if let (Some(path), Some(rec)) = (trace_path, recorder) {
        let records = rec.drain();
        socready::harness::write_trace(&path, &records, rec.dropped()).expect("write trace");
        eprintln!(
            "wrote {} trace records to {} ({} dropped); fold with: trace2flame {}",
            records.len(),
            path.display(),
            rec.dropped(),
            path.display()
        );
    }
}
