//! SoC face-off: the paper's §3 single-node study, plus the ARMv8 what-if.
//!
//! Reproduces the Fig 3 frequency sweep (performance and energy relative to
//! Tegra 2 @ 1 GHz) and then asks the paper's forward-looking question: what
//! does the projected 4-core ARMv8 part do to the gap?
//!
//! ```text
//! cargo run --release --example soc_faceoff
//! ```

use socready::arch::{suite_speedup, Platform};
use socready::kernels::fig3_profiles;
use socready::power::{suite_energy, PowerModel};

fn main() {
    let suite = fig3_profiles();
    let baseline = Platform::tegra2().soc;
    let e_base = suite_energy(&baseline, &PowerModel::tegra2_devkit(), 1.0, 1, &suite).1;

    println!("single-core DVFS sweep (speedup and energy vs Tegra2@1GHz):\n");
    println!("{:<14} {:>6} {:>9} {:>9}", "platform", "GHz", "speedup", "E ratio");
    for p in Platform::table1() {
        let pm = PowerModel::for_platform(p.id).unwrap();
        for &f in &p.soc.dvfs_ghz {
            let s = suite_speedup(&p.soc, f, 1, &baseline, 1.0, 1, &suite);
            let e = suite_energy(&p.soc, &pm, f, 1, &suite).1;
            println!("{:<14} {:>6.2} {:>9.2} {:>9.2}", p.id, f, s, e / e_base);
        }
        println!();
    }

    // The paper's §3.1.2 projection: ARMv8 doubles FP64 per cycle.
    let v8 = Platform::armv8_projection();
    let i7 = Platform::core_i7_2760qm();
    let s_v8 = suite_speedup(&v8.soc, v8.soc.fmax_ghz, 1, &baseline, 1.0, 1, &suite);
    let s_i7 = suite_speedup(&i7.soc, i7.soc.fmax_ghz, 1, &baseline, 1.0, 1, &suite);
    println!("what-if: projected {}", v8.soc.name);
    println!("  serial speedup vs Tegra2@1GHz: {s_v8:.2} (i7-2760QM: {s_i7:.2})");
    println!("  remaining mobile-vs-laptop gap: {:.1}x (Tegra 2 era: {:.1}x)", s_i7 / s_v8, s_i7);
}
