//! # socready — are mobile SoCs ready for HPC?
//!
//! A from-scratch Rust reproduction of Rajovic et al., *"Supercomputing with
//! Commodity CPUs: Are Mobile SoCs Ready for HPC?"* (SC '13): the platform
//! and power models of the evaluated SoCs, the Table-2 micro-kernel suite
//! and STREAM, a deterministic cluster/network/MPI simulation stack, the
//! five Table-3 applications, and the harness that regenerates every table
//! and figure of the paper. See `DESIGN.md` for the architecture and the
//! substitution table, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! This umbrella crate re-exports the workspace members under stable names:
//!
//! * [`arch`] — SoC/CPU/memory models and the roofline timing engine;
//! * [`power`] — wall-power models, the simulated WT230 meter, Green500;
//! * [`kernels`] — the 11 micro-kernels + STREAM (real implementations);
//! * [`des`] — the deterministic discrete-event core;
//! * [`net`] — interconnect models (TCP/IP vs Open-MX, topologies);
//! * [`mpi`] — the simulated MPI runtime;
//! * [`cluster`] — machine models (Tibidabo) and job energy accounting;
//! * [`apps`] — HPL, PEPC, HYDRO, GROMACS-like MD, SPECFEM3D-like SEM;
//! * [`trends`] — the Fig 1/2 historical datasets and regressions;
//! * [`sched`] — the multi-tenant datacenter scheduler replaying job
//!   streams of 10⁵–10⁷ jobs against the cluster models;
//! * [`harness`] — the artefact generators and the parallel deterministic
//!   sweep executor behind the `repro` binary.
//!
//! ## Quickstart
//!
//! ```
//! use socready::prelude::*;
//!
//! // Model one kernel on two platforms of Table 1.
//! let work = WorkProfile::new("daxpy", 2e8, 2.4e9, AccessPattern::Streaming);
//! let t_arm = kernel_time(&Platform::tegra2().soc, 1.0, 1, &work);
//! let t_x86 = kernel_time(&Platform::core_i7_2760qm().soc, 2.4, 1, &work);
//! assert!(t_x86.total_s < t_arm.total_s);
//!
//! // Run a real MPI job on the simulated Tibidabo cluster.
//! let spec = JobSpec::new(Platform::tegra2(), 8);
//! let run = run_mpi(spec, |mut r| async move {
//!     r.allreduce(ReduceOp::Sum, vec![1.0]).await[0]
//! })
//! .unwrap();
//! assert!(run.results.iter().all(|&v| v == 8.0));
//! ```

#![warn(missing_docs)]

pub use ::bench as harness;
pub use cluster;
pub use des;
pub use hpc_apps as apps;
pub use kernels;
pub use netsim as net;
pub use sched;
pub use simmpi as mpi;
pub use soc_arch as arch;
pub use soc_power as power;
pub use trends;

/// The most commonly used items, one `use` away.
pub mod prelude {
    pub use cluster::{green500, job_energy, Machine};
    pub use des::SimTime;
    pub use hpc_apps::{fig6, Mode};
    pub use netsim::{EndpointModel, Network, ProtocolModel, TopologySpec};
    pub use simmpi::{run_mpi, JobSpec, Msg, Rank, ReduceOp};
    pub use soc_arch::{kernel_time, AccessPattern, Platform, Soc, WorkProfile};
    pub use soc_power::{PowerMeter, PowerModel};
}
